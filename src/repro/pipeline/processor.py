"""The cycle-driven out-of-order processor model.

Per-cycle stage order (backwards through the pipe, standard practice so
that results produced this cycle are visible downstream next cycle, except
wakeup/select which is same-cycle for back-to-back execution):

1. **complete** -- finish executions scheduled for this cycle, wake
   dependents, resolve store addresses (conventional LQ search happens
   here), release branch redirects;
2. **commit** -- in-order retirement from the ROB head; stores arbitrate
   for the single data-cache read/write port with priority over load
   re-execution; re-execution verdicts (flush on mismatch) act here;
3. **re-execute** -- the in-order pre-commit re-execution pipe: SVW stage
   (SSBF update for stores, filter test for marked loads), then data-cache
   re-access for loads that must re-execute, using whatever port capacity
   store commit left over;
4. **issue** -- age-ordered select over ready instructions subject to
   per-class issue bandwidth, cache banks, and the FSQ port;
5. **dispatch** -- in-order entry into the window subject to ROB/IQ/LQ/SQ
   occupancy, branch redirects, FSQ allocation stalls, and SSN wrap drains.

The functional story runs alongside the timing story: loads compute values
at issue from whatever stores their LSU variant lets them see (possibly
stale -- that is the point), re-execution recomputes the program-order
value, and commit repairs any divergence by flushing.  A run can therefore
be checked against the golden functional execution, and the test suite
does so for every configuration.

Performance notes.  This loop is the hot path of every experiment, so it
is written for interpreter throughput while staying *bit-identical* to the
straightforward formulation (``tests/pipeline/test_skip_ahead.py`` and the
golden-equivalence suite enforce this):

- the trace is consumed in its column-native form
  (:class:`~repro.isa.coltrace.ColumnTrace`): the dispatch loop reads the
  flat per-field columns by dynamic seq and copies the few static facts an
  in-flight entry needs into :class:`~repro.pipeline.inflight.InFlight`;
  no ``DynInst`` objects exist on this path (object-built traces are
  columnized once via :meth:`~repro.isa.inst.Trace.columns`);
- per-instruction facts (kind, latency, issue class, touched words,
  integration signature) come from :class:`~repro.isa.inst.TraceMeta`,
  precomputed once per trace instead of per cycle;
- the stage methods pull shared state into locals and avoid rebuilding
  per-cycle containers (issue slots are a flat list copy, bank arbitration
  is a bitmask);
- an idle-cycle *skip-ahead* scheduler detects cycles in which no
  architectural state changed and jumps the clock to the next cycle at
  which anything can happen (a scheduled completion, the commit-depth
  horizon of the ROB head, a re-execution port release, a front-end
  redirect, an invalidation tick, or the watchdog), replicating the
  stall-counter increments the skipped cycles would have made.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush

try:  # column-kernel precompute (see Performance notes above)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None

from repro.core.ssn import SSNState
from repro.core.svw import SVWEngine
from repro.deps.spct import SPCT
from repro.deps.storesets import StoreSets
from repro.frontend.btb import BTB
from repro.frontend.direction import HybridPredictor
from repro.isa.coltrace import ColumnTrace
from repro.isa.golden import golden_execute
from repro.isa.inst import KIND_BRANCH, KIND_LOAD, KIND_STORE, Trace
from repro.isa.ops import LATENCY_BY_OP, OpClass
from repro.lsu.base import LoadStoreUnit, store_word_value
from repro.lsu.conventional import ConventionalLSU
from repro.lsu.nlq import NonAssociativeLQ
from repro.lsu.ssq import SpeculativeSQ
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.memimg import MemoryImage
from repro.pipeline.config import LSUKind, MachineConfig, RexMode
from repro.pipeline.inflight import InFlight, RexState
from repro.pipeline.stats import SimStats
from repro.rle.integration import IntegrationTable

# RexState members hoisted to module level: the re-execution pipe tests
# these identities once per queue entry per cycle.
_NOT_NEEDED = RexState.NOT_NEEDED
_PENDING = RexState.PENDING
_IN_FLIGHT = RexState.IN_FLIGHT
_DONE_OK = RexState.DONE_OK
_FILTERED = RexState.FILTERED
_FAILED = RexState.FAILED
_SVW_FLUSH = RexState.SVW_FLUSH

#: Terminal states that let an entry retire from the re-execution queue.
_REX_RETIRED = (_DONE_OK, _FILTERED, _FAILED, _SVW_FLUSH)

#: Default for :class:`Processor`'s ``vectorize`` flag: precompute per-seq
#: probe/bank columns over the flat trace columns (numpy-accelerated when
#: available) and index them from the per-cycle loops.  The scalar path
#: stays selectable so the column-vs-kernel oracle suite can assert both
#: produce bit-identical fingerprints.
VECTORIZE_DEFAULT = True


def vectorization_mode(vectorize: bool | None = None) -> str:
    """The vectorization tag recorded in BENCH payloads."""
    enabled = VECTORIZE_DEFAULT if vectorize is None else vectorize
    if not enabled:
        return "scalar"
    return "numpy" if _np is not None else "column"


class SimulationError(RuntimeError):
    """The simulation reached an inconsistent or deadlocked state."""


class Processor:
    """One machine configuration executing one trace."""

    __slots__ = (
        # configuration / trace
        "config",
        "trace",
        "meta",
        "warmup",
        "stats",
        # functional state
        "committed_memory",
        "_golden",
        # substrates
        "hierarchy",
        "predictor",
        "btb",
        "store_sets",
        "spct",
        "svw",
        "ssn",
        "it",
        "lsu",
        # dynamic state
        "cycle",
        "fetch_seq",
        "fetch_resume",
        "fetch_blocker",
        "drain_wait",
        "rob",
        "inflight_by_seq",
        "iq_occ",
        "lq_occ",
        "sq_occ",
        "reg_occ",
        "rex_queue",
        "store_words",
        "_warmup_cycle",
        "_ready",
        "_tiebreak",
        "_completes",
        "_rex_port_busy_until",
        "_unresolved",
        "_uncommitted_loads",
        "_svw_retried",
        "_svw_weak_upd",
        "_last_commit_cycle",
        "_committed_total",
        # skip-ahead scheduler
        "_skip_ahead",
        "_worked",
        "_stall_note",
        "_event_heap",
        "_wake_cause",
        # flat trace columns (hot-loop flattening; see ColumnTrace.hot)
        "vectorized",
        "_ssbf_i1",
        "_ssbf_i2",
        "_bank_bits",
        "_m_kind",
        "_m_pc",
        "_m_dst",
        "_m_addr",
        "_m_size",
        "_m_sval",
        "_m_sdata",
        "_m_base",
        "_m_taken",
        "_m_srcs",
        # cached configuration scalars (hot-loop flattening)
        "_trace_len",
        "_width",
        "_rob_size",
        "_iq_size",
        "_lq_size",
        "_sq_size",
        "_num_regs",
        "_commit_depth",
        "_store_retire_ports",
        "_uses_rex",
        "_load_latency",
        "_store_latency",
        "_l1d_latency",
        "_l1d_line_bytes",
        "_l1d_bank_mask",
        "_fsq_ports",
        "_max_pops",
        "_slot_template",
        "_total_issue",
        "_ready_stale",
        "_svw_upd",
        # devirtualized hooks (bound methods, or None when the LSU variant
        # inherits the no-op default)
        "_on_load_dispatch",
        "_on_store_dispatch",
        "_on_load_commit",
        "_on_store_commit",
        "_on_squash",
        "_on_store_resolved",
        "_on_store_forwardable",
        "_store_dispatch_ready",
        "_load_must_wait",
        "_execute_load",
        "_load_access",
    )

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace | ColumnTrace,
        validate: bool = False,
        warmup: int = 0,
        skip_ahead: bool = True,
        vectorize: bool | None = None,
    ) -> None:
        """Args:
        config: The machine to model.
        trace: The dynamic instruction stream to execute -- natively a
            :class:`~repro.isa.coltrace.ColumnTrace`; an object-built
            :class:`Trace` is columnized once (and the conversion cached
            on it) so both forms simulate bit-identically.
        validate: Check every committed load value against the golden
            functional execution (slower; used by the test suite).
        warmup: Number of committed instructions to exclude from the
            statistics (predictor/cache warm-up, as in the paper's
            sampling methodology).
        skip_ahead: Jump the clock over provably idle cycles.  Results
            are bit-identical either way (the golden-equivalence tests
            assert this); disabling it exists for those tests and for
            debugging cycle-by-cycle traces.
        vectorize: Precompute per-seq probe/bank columns and index them
            from the per-cycle loops instead of redoing the address
            arithmetic per access.  ``None`` takes the module default
            (:data:`VECTORIZE_DEFAULT`).  Results are bit-identical
            either way (the column-vs-kernel oracle suite asserts this);
            the scalar path exists for those tests.
        """
        trace = trace.columns()
        self.config = config
        self.trace = trace
        self.meta = trace.meta()
        self.warmup = min(warmup, max(0, len(trace) - 1))
        self._warmup_cycle = 0
        self.stats = SimStats(config_name=config.name, workload=trace.name)

        # Functional state.
        self.committed_memory = MemoryImage(trace.initial_memory)
        self._golden = golden_execute(trace) if validate else None

        # Substrates.
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = HybridPredictor(config.predictor_entries)
        self.btb = BTB(config.btb_entries)
        self.store_sets: StoreSets | None = StoreSets() if config.store_sets else None
        self.spct = SPCT()
        self.svw: SVWEngine | None = SVWEngine(config.svw) if config.svw else None
        self.ssn: SSNState = self.svw.ssn if self.svw else SSNState(None)
        self.it: IntegrationTable | None = (
            IntegrationTable(config.it_entries, config.it_assoc) if config.rle else None
        )
        if self.svw is not None and self.it is not None:
            self.svw.on_drain.append(self.it.flash_clear)
        self.lsu: LoadStoreUnit = {
            LSUKind.CONVENTIONAL: ConventionalLSU,
            LSUKind.NLQ: NonAssociativeLQ,
            LSUKind.SSQ: SpeculativeSQ,
        }[config.lsu](self)

        # Dynamic state.
        self.cycle = 0
        self.fetch_seq = 0
        self.fetch_resume = 0
        self.fetch_blocker: InFlight | None = None
        self.drain_wait = False
        self.rob: deque[InFlight] = deque()
        self.inflight_by_seq: dict[int, InFlight] = {}
        self.iq_occ = 0
        self.lq_occ = 0
        self.sq_occ = 0
        self.reg_occ = 0
        self._ready: list[tuple[int, int, InFlight]] = []
        self._tiebreak = 0
        self._completes: dict[int, list[InFlight]] = {}
        self.rex_queue: deque[InFlight] = deque()
        #: The shared D$ read/write port is occupied for the full duration
        #: of a re-execution access (it is a retirement-side port, not a
        #: pipelined execution port) -- this is what turns load re-execution
        #: into the paper's store-commit critical loop.
        self._rex_port_busy_until = 0
        #: In-flight stores indexed by 4-byte word (dispatch order).
        self.store_words: dict[int, list[InFlight]] = {}
        self._unresolved: list[tuple[int, InFlight]] = []
        self._uncommitted_loads: deque[int] = deque()
        #: Seqs already flushed once by `_svw_only_flush`; a repeat positive
        #: filter test on a refetched load is a false positive (see the
        #: SVW_ONLY decision in `_rex_stage`) and must not flush again.
        self._svw_retried: set[int] = set()
        self._last_commit_cycle = 0
        self._committed_total = 0

        # Skip-ahead scheduler state.
        self._skip_ahead = skip_ahead
        self._worked = False
        self._stall_note: str | None = None
        #: Which `_next_event_cycle` candidate ended the most recent
        #: quiescent stretch (feeds `SimStats.wakeup_causes`).
        self._wake_cause = "watchdog"
        #: Min-heap of cycles with scheduled completion events (one entry
        #: per distinct cycle), consumed lazily by the skip-ahead scan.
        self._event_heap: list[int] = []

        # Flat trace columns for the dispatch loop (plain lists, built
        # once per trace and shared by every configuration replaying it).
        hot = trace.hot()
        self._m_kind = self.meta.kind
        self._m_pc = hot.pc
        self._m_dst = hot.dst_reg
        self._m_addr = hot.addr
        self._m_size = hot.size
        self._m_sval = hot.store_value
        self._m_sdata = hot.store_data_seq
        self._m_base = hot.base_seq
        self._m_taken = hot.taken
        self._m_srcs = hot.srcs

        # Flattened configuration scalars for the per-cycle loops.
        self._trace_len = len(trace)
        self._width = config.width
        self._rob_size = config.rob_size
        self._iq_size = config.iq_size
        self._lq_size = config.lq_size
        self._sq_size = config.sq_size
        self._num_regs = config.num_regs
        self._commit_depth = config.commit_depth
        self._store_retire_ports = config.store_retire_ports
        self._uses_rex = config.uses_rex
        self._load_latency = config.load_latency
        self._store_latency = LATENCY_BY_OP[OpClass.STORE]
        self._l1d_latency = config.hierarchy.l1d.latency
        self._l1d_line_bytes = config.hierarchy.l1d.line_bytes
        self._l1d_bank_mask = config.hierarchy.l1d.banks - 1
        self._fsq_ports = config.fsq_ports
        self._max_pops = 3 * config.width + 8
        self._svw_upd = (
            self.svw is not None and self.svw.config.update_on_forward
        )
        self._svw_weak_upd = self._svw_upd and self.svw.weak_upd
        # Devirtualize the per-instruction LSU hooks: variants that keep
        # the base no-op pay nothing per event, overriding variants get a
        # pre-bound method (no attribute chase in the loops).
        lsu = self.lsu
        lsu_cls = type(lsu)

        def _hook(name: str):
            return None if getattr(lsu_cls, name) is getattr(LoadStoreUnit, name) else getattr(lsu, name)

        self._on_load_dispatch = _hook("on_load_dispatch")
        self._on_store_dispatch = _hook("on_store_dispatch")
        self._on_load_commit = _hook("on_load_commit")
        self._on_store_commit = _hook("on_store_commit")
        self._on_squash = _hook("on_squash")
        self._on_store_resolved = _hook("on_store_resolved")
        self._on_store_forwardable = _hook("on_store_forwardable")
        self._store_dispatch_ready = _hook("store_dispatch_ready")
        self._load_must_wait = _hook("load_must_wait")
        self._execute_load = lsu.execute_load
        self._load_access = self.hierarchy.load_access
        #: Per-cycle issue-bandwidth budgets indexed by ``int(OpClass)``
        #: (IMUL and NOP draw from the IALU budget via
        #: :data:`~repro.isa.ops.ISSUE_CLASS_BY_OP`, so their own indices
        #: stay zero).
        self._slot_template = [
            config.int_issue,
            0,
            config.fp_issue,
            config.load_issue,
            config.store_issue,
            config.branch_issue,
            0,
        ]
        self._total_issue = sum(self._slot_template)
        # Column kernels: per-seq precomputes over the flat trace columns.
        # Addresses are trace-static, so the SSBF probe indices and the
        # L1D bank bits are pure functions of seq -- computed once here
        # (vectorized) and indexed from the re-execution and issue loops.
        self.vectorized = VECTORIZE_DEFAULT if vectorize is None else vectorize
        self._ssbf_i1: list[int] | None = None
        self._ssbf_i2: list[int] | None = None
        self._bank_bits: list[int] | None = None
        if self.vectorized:
            if self.svw is not None:
                probes = self.svw.probe_columns(hot.addr, hot.size)
                if probes is not None:
                    self._ssbf_i1, self._ssbf_i2 = probes
            line_bytes = self._l1d_line_bytes
            bank_mask = self._l1d_bank_mask
            if _np is not None:
                addr = _np.asarray(hot.addr, dtype=_np.int64)
                bits = _np.left_shift(1, (addr // line_bytes) & bank_mask)
                self._bank_bits = bits.tolist()
            else:
                self._bank_bits = [
                    1 << ((a // line_bytes) & bank_mask) for a in hot.addr
                ]
        #: Exact count of squashed-but-still-heaped ready entries.  While
        #: it is zero and the cycle's issue bandwidth is spent, the select
        #: loop can stop popping: every further pop in the naive loop
        #: either drops a stale entry (none exist) or defers a live one
        #: back unchanged, so stopping early is observationally identical.
        self._ready_stale = 0

    # ------------------------------------------------------------------ helpers

    def older_unresolved_store_exists(self, seq: int) -> bool:
        """Is any older in-flight store's address still unknown?

        This is the NLQ-LS natural-filter condition the scheduler evaluates.
        A store's address is known to the scheduler once the store issues
        (AGEN happens in the issue cycle).
        """
        heap = self._unresolved
        while heap:
            _, store = heap[0]
            if store.squashed or store.issued:
                heappop(heap)
                continue
            return heap[0][0] < seq
        return False

    def _push_ready(self, entry: InFlight) -> None:
        self._tiebreak += 1
        heappush(self._ready, (entry.seq, self._tiebreak, entry))

    def _schedule_completion(self, entry: InFlight, when: int) -> None:
        entry.complete_cycle = when
        bucket = self._completes.get(when)
        if bucket is None:
            self._completes[when] = [entry]
            heappush(self._event_heap, when)
        else:
            bucket.append(entry)

    def _wake(self, producer: InFlight) -> None:
        waiters = producer.waiters
        if not waiters:
            return
        producer.waiters = None
        for role, waiter in waiters:
            if waiter.squashed:
                continue
            if role:
                waiter.data_pending = 0
                self._store_maybe_done(waiter)
                continue
            waiter.pending_srcs -= 1
            if waiter.pending_srcs == 0:
                if waiter.eliminated:
                    # Integrated loads "complete" as soon as their value does.
                    self._schedule_completion(waiter, self.cycle + 1)
                else:
                    self._push_ready(waiter)

    def _store_maybe_done(self, store: InFlight) -> None:
        """A store is fully done once its address and its data both exist."""
        if store.resolved and store.data_pending == 0 and not store.done:
            store.done = True
            if self._on_store_forwardable is not None:
                self._on_store_forwardable(store)
            if store.waiters is not None:
                self._wake(store)

    def _program_order_value(self, load: InFlight) -> int:
        """The architecturally-correct value at the load's position.

        Valid whenever all older instructions are complete (true at the
        re-execution frontier and at commit): every older store is either
        still in ``store_words`` or already merged into committed memory.
        """
        load_seq = load.seq
        store_words = self.store_words
        committed_read = self.committed_memory.read
        value = 0
        for shift, word in enumerate(self.meta.words[load_seq]):
            word_value = None
            stores = store_words.get(word)
            if stores:
                for store in reversed(stores):
                    if store.seq < load_seq and not store.squashed:
                        word_value = store_word_value(store, word)
                        break
            if word_value is None:
                word_value = committed_read(word, 4)
            value |= word_value << (32 * shift)
        if load.size == 4:
            value &= 0xFFFF_FFFF
        return value

    def _note_stall(self, reason: str) -> None:
        """Count a dispatch-stall cycle (and remember it for skip-ahead)."""
        self._stall_note = reason
        stalls = self.stats.dispatch_stalls
        stalls[reason] = stalls.get(reason, 0) + 1

    # ------------------------------------------------------------------ main loop

    def run(self, max_cycles: int | None = None) -> SimStats:
        """Simulate until the whole trace commits; returns statistics.

        The cyclic-garbage collector is suspended for the duration: the
        loop allocates heavily (one :class:`InFlight` plus several tuples
        per dispatched instruction) but creates no reference cycles --
        every container is emptied explicitly as entries retire -- so the
        periodic generation-0 scans are pure overhead.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, max_cycles: int | None) -> SimStats:
        total = self._trace_len
        watchdog = self.config.watchdog_cycles
        inval = self.config.invalidation_interval
        skip = self._skip_ahead
        rex_mode = self.config.rex_mode
        rex_active = rex_mode is RexMode.REEXECUTE or rex_mode is RexMode.SVW_ONLY
        # Containers are bound once in __init__ and never rebound, so the
        # per-cycle stage gates below can hold direct references.  Stage
        # methods are bound once too: the gates run every simulated cycle.
        completes = self._completes
        ready = self._ready
        rex_queue = self.rex_queue
        rob = self.rob
        commit_depth = self._commit_depth
        store_retire_ports = self._store_retire_ports
        do_complete = self._do_complete
        do_commit = self._do_commit
        do_rex = self._do_rex
        do_issue = self._do_issue
        do_dispatch = self._do_dispatch
        rex0 = ser0 = 0
        while self._committed_total < total:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            cycle = self.cycle + 1
            self.cycle = cycle
            if skip:
                self._worked = False
                self._stall_note = None
                stats = self.stats
                rex0 = stats.rex_port_stalls
                ser0 = stats.serialization_stalls
            # Stage gates: each stage's own early-out precondition is
            # evaluated here so no-op stages cost a test, not a call.
            if cycle in completes:
                do_complete()
            port_budget = store_retire_ports
            if rob:
                head = rob[0]
                if head.done and cycle >= head.complete_cycle + commit_depth:
                    port_budget = do_commit()
            if rex_active and rex_queue and rex_queue[0].done:
                do_rex(port_budget)
            if ready:
                do_issue()
            do_dispatch()
            if inval and cycle % inval == 0:
                self._inject_invalidation()
                self._worked = True
            if cycle - self._last_commit_cycle > watchdog:
                head = self.rob[0] if self.rob else None
                raise SimulationError(
                    f"no commit for {watchdog} cycles at cycle {cycle}; "
                    f"head={head!r} fetch_seq={self.fetch_seq} "
                    f"rex_queue={len(self.rex_queue)} drain_wait={self.drain_wait}"
                )
            if skip and not self._worked:
                # Nothing changed this cycle except stall counters, so
                # every cycle up to the next event is an exact replay:
                # account the counters and jump the clock.
                limit = self._next_event_cycle(watchdog, inval) - 1
                if max_cycles is not None and limit > max_cycles:
                    # The cap, not the scanned event, is what actually ends
                    # this jump -- attribute the wake-up accordingly.
                    limit = max_cycles
                    self._wake_cause = "max_cycles"
                n = limit - cycle
                if n > 0:
                    stats = self.stats
                    delta = stats.rex_port_stalls - rex0
                    if delta:
                        stats.rex_port_stalls += delta * n
                    delta = stats.serialization_stalls - ser0
                    if delta:
                        stats.serialization_stalls += delta * n
                    note = self._stall_note
                    if note is not None:
                        stats.dispatch_stalls[note] += n
                    stats.skip_jumps += 1
                    stats.skipped_cycles += n
                    cause = self._wake_cause
                    causes = stats.wakeup_causes
                    causes[cause] = causes.get(cause, 0) + 1
                    self.cycle = limit
        self.stats.cycles = self.cycle - self._warmup_cycle
        if self.svw is not None:
            self.stats.ssn_drains += self.svw.ssn.drains
        return self.stats

    def _next_event_cycle(self, watchdog: int, inval: int) -> int:
        """Earliest future cycle at which a quiescent machine can change.

        Sound over-approximation: returning a cycle *earlier* than the
        next real event is always safe (the intervening cycles replay as
        quiescent), so every time-gated condition in the stage functions
        must contribute a candidate here, and does:

        - scheduled completions (``_event_heap``);
        - the ROB head's commit-depth horizon;
        - release of the shared re-execution D$ port;
        - in-flight re-execution accesses finishing;
        - the front-end redirect resuming;
        - the next synthetic-invalidation tick;
        - the watchdog deadline (also the deadlock backstop).
        """
        cycle = self.cycle
        nxt = self._last_commit_cycle + watchdog + 1
        cause = "watchdog"
        heap = self._event_heap
        while heap and heap[0] <= cycle:
            heappop(heap)
        if heap and heap[0] < nxt:
            nxt = heap[0]
            cause = "completion"
        rob = self.rob
        if rob:
            head = rob[0]
            if head.done:
                horizon = head.complete_cycle + self._commit_depth
                if cycle < horizon < nxt:
                    nxt = horizon
                    cause = "commit"
        busy = self._rex_port_busy_until
        if cycle < busy < nxt:
            nxt = busy
            cause = "rex_port"
        if self.config.rex_mode is RexMode.REEXECUTE:
            # IN_FLIGHT entries only exist ahead of the first incomplete
            # entry (the re-execution pipe is in-order), so the scan is
            # short and bounded.
            for entry in self.rex_queue:
                if not entry.done:
                    break
                if entry.rex_state is _IN_FLIGHT:
                    done_cycle = entry.rex_done_cycle
                    if cycle < done_cycle < nxt:
                        nxt = done_cycle
                        cause = "rex_inflight"
        resume = self.fetch_resume
        if cycle < resume < nxt:
            nxt = resume
            cause = "fetch_resume"
        if inval:
            tick = cycle - cycle % inval + inval
            if tick < nxt:
                nxt = tick
                cause = "invalidation"
        self._wake_cause = cause
        return nxt

    # ------------------------------------------------------------------ complete

    def _do_complete(self) -> None:
        events = self._completes.pop(self.cycle, None)
        if not events:
            return
        self._worked = True
        for entry in events:
            if entry.squashed:
                continue
            kind = entry.kind
            if kind == KIND_STORE:
                # Address generation finished (STA); data may still be
                # outstanding (STD) -- the store is done when both are.
                entry.resolved = True
                if self._on_store_resolved is not None:
                    victim = self._on_store_resolved(entry)
                    if victim is not None and not victim.squashed:
                        self._ordering_flush(victim, entry)
                self._store_maybe_done(entry)
                continue
            entry.done = True
            if kind == KIND_BRANCH:
                if entry.mispredicted and self.fetch_blocker is entry:
                    self.fetch_resume = max(
                        self.fetch_resume, self.cycle + self.config.mispredict_penalty
                    )
                    self.fetch_blocker = None
            if entry.waiters is not None:
                self._wake(entry)

    # ------------------------------------------------------------------ commit

    def _do_commit(self) -> int:
        """Commit up to ``width``; returns leftover D$ port capacity."""
        port_budget = self._store_retire_ports
        rob = self.rob
        if not rob:
            return port_budget
        cycle = self.cycle
        commit_depth = self._commit_depth
        head = rob[0]
        if not head.done or cycle < head.complete_cycle + commit_depth:
            # Head not retirement-eligible: nothing can commit this cycle.
            return port_budget
        width = self._width
        uses_rex = self._uses_rex
        rex_mode = self.config.rex_mode
        inflight_by_seq = self.inflight_by_seq
        warmup = self.warmup
        stats = self.stats
        commits = 0
        branches = 0
        # ``committed``/``committed_branches`` are batched into locals and
        # flushed once per call (and once more at the warm-up swap, so each
        # increment lands in the stats object that was current when its
        # instruction retired).
        flushed = flushed_branches = 0
        while rob and commits < width:
            head = rob[0]
            if not head.done or cycle < head.complete_cycle + commit_depth:
                break
            kind = head.kind
            flush_after = False
            if kind == KIND_LOAD:
                if uses_rex:
                    state = head.rex_state
                    if state is _PENDING or state is _IN_FLIGHT:
                        if rex_mode is RexMode.PERFECT:
                            self._perfect_verify(head)
                            state = head.rex_state
                        else:
                            stats.serialization_stalls += 1
                            break
                    if state is _FAILED:
                        flush_after = True
                    elif state is _SVW_FLUSH:
                        self._svw_only_flush(head)
                        break
                self._commit_load(head)
            elif kind == KIND_STORE:
                if uses_rex and head.rex_state is not _DONE_OK:
                    # Store may not commit until it (and all older loads)
                    # cleared the re-execution pipe -- the critical loop.
                    if rex_mode is RexMode.PERFECT:
                        head.rex_state = _DONE_OK
                    else:
                        stats.serialization_stalls += 1
                        break
                if port_budget <= 0:
                    break
                if cycle < self._rex_port_busy_until:
                    # A load re-execution holds the shared D$ port.
                    stats.rex_port_stalls += 1
                    break
                port_budget -= 1
                self._commit_store(head)
            elif kind == KIND_BRANCH:
                branches += 1
            # Retire the head (inline: this runs once per committed
            # instruction).
            rob.popleft()
            del inflight_by_seq[head.seq]
            committed_total = self._committed_total + 1
            self._committed_total = committed_total
            if head.dst_reg >= 0:
                self.reg_occ -= 1
            commits += 1
            if committed_total == warmup:
                # Measurement begins: credit the batched counts to the
                # warm-up stats object before it is swapped for a fresh one.
                stats.committed += commits - flushed
                stats.committed_branches += branches - flushed_branches
                flushed, flushed_branches = commits, branches
                self._begin_measurement()
                stats = self.stats
            if flush_after:
                # Re-execution mismatch: the load committed corrected;
                # flush everything younger.
                self._rex_failure_flush(head)
                break
        if commits:
            stats.committed += commits - flushed
            stats.committed_branches += branches - flushed_branches
            self._last_commit_cycle = cycle
            self._worked = True
        return port_budget

    def _begin_measurement(self) -> None:
        """Discard warm-up statistics; measurement starts now."""
        self.stats = SimStats(
            config_name=self.config.name, workload=self.trace.name
        )
        self._warmup_cycle = self.cycle
        if self.svw is not None:
            self.stats.ssn_drains = -self.svw.ssn.drains

    def _commit_load(self, head: InFlight) -> None:
        stats = self.stats
        stats.committed_loads += 1
        self.lq_occ -= 1
        uncommitted = self._uncommitted_loads
        if uncommitted and uncommitted[0] == head.seq:
            uncommitted.popleft()
        if head.marked:
            stats.marked_loads += 1
            state = head.rex_state
            if state is _FILTERED:
                stats.filtered_loads += 1
            elif self.config.rex_mode in (RexMode.REEXECUTE, RexMode.PERFECT):
                stats.reexecuted_loads += 1
            if state is _FAILED:
                stats.rex_failures += 1
                head.exec_value = head.rex_value  # corrected at commit
        if head.fsq:
            stats.fsq_loads += 1
        if head.eliminated:
            if head.elim_bypass:
                stats.eliminated_bypass += 1
            else:
                stats.eliminated_reuse += 1
            if head.squash_reuse:
                stats.squash_reuse_loads += 1
        if self._on_load_commit is not None:
            self._on_load_commit(head)
        if self._golden is not None:
            expected = self._golden.load_values[head.seq]
            if head.exec_value != expected:
                raise SimulationError(
                    f"load seq={head.seq} committed {head.exec_value:#x}, "
                    f"golden value is {expected:#x} (config {self.config.name})"
                )

    def _commit_store(self, head: InFlight) -> None:
        self.stats.committed_stores += 1
        self.sq_occ -= 1
        self.hierarchy.store_access(head.addr)
        self.committed_memory.write(head.addr, head.store_value, head.size)
        self.ssn.retire_store()
        self.spct.record(head.addr, head.size, head.pc)
        store_words = self.store_words
        for word in self.meta.words[head.seq]:
            stores = store_words.get(word)
            if stores:
                if stores[0] is head:
                    stores.pop(0)
                else:  # pragma: no cover - defensive
                    stores.remove(head)
                if not stores:
                    del store_words[word]
        if self.store_sets is not None:
            self.store_sets.store_done(head.pc, head.seq)
        if head.fsq:
            self.stats.fsq_stores += 1
        if self._on_store_commit is not None:
            self._on_store_commit(head)

    def _perfect_verify(self, load: InFlight) -> None:
        """Ideal re-execution: zero latency, infinite bandwidth."""
        if not load.marked:
            load.rex_state = _DONE_OK
            return
        load.rex_value = self._program_order_value(load)
        load.rex_state = (
            _DONE_OK if load.rex_value == load.exec_value else _FAILED
        )

    # ------------------------------------------------------------------ re-execution

    def _do_rex(self, port_budget: int) -> None:
        rex_mode = self.config.rex_mode
        if rex_mode is not RexMode.REEXECUTE and rex_mode is not RexMode.SVW_ONLY:
            return
        queue = self.rex_queue
        if not queue or not queue[0].done:
            # The pipe is in-order and the front entry is never terminal
            # (terminal entries retire eagerly below), so an incomplete
            # front entry means no transition is possible this cycle.
            return
        cycle = self.cycle
        svw = self.svw
        atomic = svw is not None and not svw.config.speculative_updates
        budget = self._width
        i1 = self._ssbf_i1
        if i1 is not None:
            i2 = self._ssbf_i2
            # Re-fetched every call: a wrap-around drain rebinds the table.
            table = svw.ssbf._table
        else:
            i2 = table = None
        qlen = len(queue)
        index = 0
        processed = 0
        while index < qlen and processed < budget:
            entry = queue[index]
            if not entry.done:
                break
            if entry.kind == KIND_STORE:
                if entry.rex_state is _NOT_NEEDED:
                    if (
                        atomic
                        and self._uncommitted_loads
                        and self._uncommitted_loads[0] < entry.seq
                    ):
                        # Atomic updates: the store (and everything behind
                        # it in the SVW stage) waits until every older load
                        # has retired -- the elongated serialization the
                        # paper warns about.
                        break
                    if table is not None:
                        # record_store inlined over the precomputed probe
                        # columns (SimpleSSBF with the filter enabled).
                        seq = entry.seq
                        ssn = entry.ssn
                        first = i1[seq]
                        if ssn > table[first]:
                            table[first] = ssn
                        second = i2[seq]
                        if second >= 0 and ssn > table[second]:
                            table[second] = ssn
                    elif svw is not None:
                        svw.record_store(entry.addr, entry.size, entry.ssn)
                    entry.rex_state = _DONE_OK
                    self._worked = True
                index += 1
                processed += 1
                continue
            # Loads.
            state = entry.rex_state
            if state is _PENDING:
                if not entry.marked:
                    entry.rex_state = _DONE_OK
                    self._worked = True
                else:
                    if table is not None:
                        # must_reexecute inlined over the precomputed probe
                        # columns (filter counters maintained).
                        svw.filter_tests += 1
                        seq = entry.seq
                        value = table[i1[seq]]
                        second = i2[seq]
                        if second >= 0 and table[second] > value:
                            value = table[second]
                        must = value > entry.svw
                        if must:
                            svw.filter_hits += 1
                    elif svw is not None:
                        must = svw.must_reexecute(entry.addr, entry.size, entry.svw)
                    else:
                        must = True
                    if rex_mode is RexMode.SVW_ONLY:
                        # Config validation guarantees svw is present here.
                        if must and self._svw_retried:
                            # A load refetched by `_svw_only_flush` restarted
                            # fetch at its own seq: everything older has
                            # committed, so the re-issued access read committed
                            # memory and is architecturally correct.  A repeat
                            # positive test is stale SSBF state (e.g.
                            # wrong-path pollution re-injected by the flush
                            # itself) and flushing again would livelock.
                            if entry.seq in self._svw_retried:
                                self._svw_retried.discard(entry.seq)
                                must = False
                        entry.rex_state = _SVW_FLUSH if must else _FILTERED
                        self._worked = True
                    elif not must:
                        entry.rex_state = _FILTERED
                        self._worked = True
                    else:
                        # Needs the shared data-cache port for the full access.
                        if port_budget <= 0 or cycle < self._rex_port_busy_until:
                            self.stats.rex_port_stalls += 1
                            break  # in-order start
                        entry.rex_state = _IN_FLIGHT
                        access = self.hierarchy.rex_access(entry.addr)
                        # RLE's elongated pipe (register-file address/value
                        # reads) adds latency but does not hold the D$ port.
                        extra = 2 if entry.eliminated else 0
                        entry.rex_done_cycle = cycle + access + extra
                        self._rex_port_busy_until = cycle + access
                        self._worked = True
            if entry.rex_state is _IN_FLIGHT:
                if cycle >= entry.rex_done_cycle:
                    entry.rex_value = self._program_order_value(entry)
                    entry.rex_state = (
                        _DONE_OK
                        if entry.rex_value == entry.exec_value
                        else _FAILED
                    )
                    self._worked = True
                else:
                    index += 1
                    continue  # access still in flight; younger entries may start
            index += 1
            processed += 1
        # Retire verified entries from the front, in order.
        while queue and queue[0].rex_state in _REX_RETIRED:
            queue.popleft()
            self._worked = True

    # ------------------------------------------------------------------ issue

    def _do_issue(self) -> None:
        ready = self._ready
        if not ready:
            return
        cycle = self.cycle
        meta = self.meta
        m_kind = self._m_kind
        m_iclass = meta.issue_class
        m_latency = meta.latency
        line_bytes = self._l1d_line_bytes
        bank_mask = self._l1d_bank_mask
        bank_bits = self._bank_bits
        load_must_wait = self._load_must_wait
        execute_load = self._execute_load
        load_access = self._load_access
        svw_upd = self._svw_upd
        svw_weak = self._svw_weak_upd
        load_base_latency = self._load_latency - self._l1d_latency
        store_latency = self._store_latency
        completes = self._completes
        event_heap = self._event_heap
        slots = self._slot_template.copy()
        banks_used = 0
        fsq_budget = self._fsq_ports
        issued = 0
        remaining = self._total_issue
        deferred: list[tuple[int, int, InFlight]] = []
        max_pops = self._max_pops
        pops = 0
        while ready and pops < max_pops:
            if remaining <= 0 and self._ready_stale <= 0:
                # All issue bandwidth consumed and no stale entries left
                # to drop: every further pop would just defer-and-repush.
                break
            pops += 1
            item = heappop(ready)
            entry = item[2]
            if entry.squashed or entry.issued or entry.pending_srcs > 0:
                if entry.squashed:
                    self._ready_stale -= 1
                continue
            seq = entry.seq
            iclass = m_iclass[seq]
            if slots[iclass] <= 0:
                deferred.append(item)
                continue
            kind = m_kind[seq]
            if kind == KIND_LOAD:
                # FSQ port contract (see lsu/base.py): a load is charged
                # against the FSQ port iff its LSU set ``entry.fsq``.
                uses_fsq = entry.fsq
                if uses_fsq and fsq_budget <= 0:
                    deferred.append(item)
                    continue
                if load_must_wait is not None and load_must_wait(entry) is not None:
                    # SQ CAM hit on a store without data: replay next cycle.
                    deferred.append(item)
                    continue
                if bank_bits is not None:
                    bank_bit = bank_bits[seq]
                else:
                    bank_bit = 1 << ((entry.addr // line_bytes) & bank_mask)
                if banks_used & bank_bit:
                    deferred.append(item)
                    continue
                banks_used |= bank_bit
                if uses_fsq:
                    fsq_budget -= 1
                # Issue the load (inlined: once per issued load).
                entry.issued = True
                execute_load(entry)
                if svw_upd and entry.forwarded_ssn > entry.svw:
                    # ``+UPD``: forwarding shrinks the vulnerability window.
                    entry.svw = (
                        self.svw.ssn.rename if svw_weak else entry.forwarded_ssn
                    )
                # Timing: the configured load-to-use latency covers the
                # L1D + SQ path; anything beyond the L1 adds the
                # hierarchy's miss penalty.
                when = cycle + load_base_latency + load_access(entry.addr)
            elif kind == KIND_STORE:
                entry.issued = True
                when = cycle + store_latency
            else:
                entry.issued = True
                when = cycle + m_latency[seq]
            issued += 1
            remaining -= 1
            slots[iclass] -= 1
            # _schedule_completion inlined (once per issued instruction).
            entry.complete_cycle = when
            bucket = completes.get(when)
            if bucket is None:
                completes[when] = [entry]
                heappush(event_heap, when)
            else:
                bucket.append(entry)
        if issued:
            self.iq_occ -= issued
            self._worked = True
        for item in deferred:
            heappush(ready, item)

    # ------------------------------------------------------------------ dispatch

    def _do_dispatch(self) -> None:
        cycle = self.cycle
        if cycle < self.fetch_resume:
            self._note_stall("frontend")
            return
        if self.fetch_blocker is not None:
            self._note_stall("branch")
            return
        if self.drain_wait:
            if not self.rob:
                assert self.svw is not None
                self.svw.drain()
                self.drain_wait = False
                self._worked = True
            else:
                self._note_stall("drain")
                return
        fetch_seq = self.fetch_seq
        trace_len = self._trace_len
        if fetch_seq >= trace_len:
            return
        m_kind = self._m_kind
        m_dst = self._m_dst
        # Cheap first-instruction occupancy check: the majority of calls
        # stall right here, so decide before paying the loop's local binds
        # (the loop re-evaluates the same chain for dispatched entries).
        kind = m_kind[fetch_seq]
        if len(self.rob) >= self._rob_size:
            self._note_stall("rob")
            return
        if self.iq_occ >= self._iq_size:
            self._note_stall("iq")
            return
        if kind == KIND_LOAD:
            if self.lq_occ >= self._lq_size:
                self._note_stall("lq")
                return
        elif kind == KIND_STORE and self.sq_occ >= self._sq_size:
            self._note_stall("sq")
            return
        if m_dst[fetch_seq] >= 0 and self.reg_occ >= self._num_regs:
            self._note_stall("regs")
            return
        m_pc = self._m_pc
        m_taken = self._m_taken
        m_addr = self._m_addr
        m_size = self._m_size
        m_sval = self._m_sval
        m_base = self._m_base
        m_sdata = self._m_sdata
        m_srcs = self._m_srcs
        rob = self.rob
        inflight_by_seq = self.inflight_by_seq
        store_dispatch_ready = self._store_dispatch_ready
        ssn = self.ssn
        svw_present = self.svw is not None
        width = self._width
        rob_size = self._rob_size
        iq_size = self._iq_size
        lq_size = self._lq_size
        sq_size = self._sq_size
        num_regs = self._num_regs
        dispatched = 0
        taken_branches = 0
        while fetch_seq < trace_len and dispatched < width:
            kind = m_kind[fetch_seq]
            dst_reg = m_dst[fetch_seq]
            if len(rob) >= rob_size:
                reason = "rob"
            elif self.iq_occ >= iq_size:
                reason = "iq"
            elif kind == KIND_LOAD and self.lq_occ >= lq_size:
                reason = "lq"
            elif kind == KIND_STORE and self.sq_occ >= sq_size:
                reason = "sq"
            elif dst_reg >= 0 and self.reg_occ >= num_regs:
                reason = "regs"
            else:
                reason = None
            if reason is not None:
                self.fetch_seq = fetch_seq
                self._note_stall(reason)
                break
            if kind == KIND_STORE and ssn.wrap_pending and svw_present:
                # Entering drain_wait is a state transition the skip-ahead
                # scheduler has no wake-up candidate for (with an empty ROB
                # the drain would fire on the very next cycle), so the
                # cycle must count as worked.
                self.drain_wait = True
                self._worked = True
                self.fetch_seq = fetch_seq
                self._note_stall("drain")
                break
            taken = kind == KIND_BRANCH and m_taken[fetch_seq]
            if taken and taken_branches >= 1 and dispatched > 0:
                # Can fetch past one taken branch per cycle.
                self.fetch_seq = fetch_seq
                break
            # The in-flight entry is the instruction's *view*: the static
            # facts the stage loops and LSU hooks read are copied out of
            # the flat columns here, once per dispatch.
            entry = InFlight(fetch_seq, m_pc[fetch_seq], kind, dst_reg, cycle)
            if kind == KIND_LOAD or kind == KIND_STORE:
                entry.addr = m_addr[fetch_seq]
                entry.size = m_size[fetch_seq]
                if kind == KIND_STORE:
                    entry.store_value = m_sval[fetch_seq]
            elif taken:
                entry.taken = True
            if (
                kind == KIND_STORE
                and store_dispatch_ready is not None
                and not store_dispatch_ready(entry)
            ):
                self.fetch_seq = fetch_seq
                self._note_stall("fsq")
                break
            # Register dataflow.  Stores split address (issue-gating) from
            # data (commit/forwarding-gating) operands.
            if kind == KIND_STORE:
                addr_producer = inflight_by_seq.get(m_base[fetch_seq])
                if addr_producer is not None and not addr_producer.done:
                    entry.pending_srcs += 1
                    addr_producer.add_waiter(entry)
                data_producer = inflight_by_seq.get(m_sdata[fetch_seq])
                if data_producer is not None and not data_producer.done:
                    entry.data_pending = 1
                    data_producer.add_waiter(entry, role=1)
            else:
                for src in m_srcs[fetch_seq]:
                    producer = inflight_by_seq.get(src)
                    if producer is not None and not producer.done:
                        entry.pending_srcs += 1
                        producer.add_waiter(entry)
            # Place the entry into the window.
            if kind == KIND_LOAD:
                self._dispatch_load(entry)
            elif kind == KIND_STORE:
                self._dispatch_store(entry)
            else:
                if kind == KIND_BRANCH:
                    self._dispatch_branch(entry)
                self.iq_occ += 1
            rob.append(entry)
            inflight_by_seq[entry.seq] = entry
            if dst_reg >= 0:
                self.reg_occ += 1
            if not entry.eliminated and not entry.issued and entry.pending_srcs == 0:
                tiebreak = self._tiebreak + 1
                self._tiebreak = tiebreak
                heappush(self._ready, (entry.seq, tiebreak, entry))
            dispatched += 1
            fetch_seq += 1
            self.fetch_seq = fetch_seq
            if taken:
                taken_branches += 1
            if entry.mispredicted:
                break
        if dispatched:
            self._worked = True

    def _dispatch_branch(self, entry: InFlight) -> None:
        correct = self.predictor.predict_and_update(entry.pc, entry.taken)
        btb_hit = self.btb.lookup_and_update(entry.pc) if entry.taken else True
        if not correct:
            entry.mispredicted = True
            self.stats.branch_mispredicts += 1
            self.fetch_blocker = entry
        elif not btb_hit:
            self.stats.btb_misfetches += 1
            self.fetch_resume = max(
                self.fetch_resume, self.cycle + self.config.btb_penalty
            )

    def _dispatch_load(self, entry: InFlight) -> None:
        self.lq_occ += 1
        self._uncommitted_loads.append(entry.seq)
        svw = self.svw
        if self._uses_rex:
            entry.rex_state = _PENDING
        if svw is not None:
            # svw_at_dispatch() inlined: the NLQ/SSQ baseline window.
            entry.svw = svw.ssn.retire
        # RLE: try to integrate before doing anything else.
        if self.it is not None and self._try_integrate(entry):
            self.rex_queue.append(entry)
            return
        self.iq_occ += 1
        # Memory dependence prediction.
        if self.store_sets is not None:
            store_seq = self.store_sets.load_dependence(entry.pc)
            if store_seq is not None:
                blocker = self.inflight_by_seq.get(store_seq)
                if blocker is not None and blocker.kind == KIND_STORE and not blocker.done:
                    entry.pending_srcs += 1
                    blocker.add_waiter(entry)
                    self.stats.store_set_waits += 1
        if self._on_load_dispatch is not None:
            self._on_load_dispatch(entry)
        if self._uses_rex:
            self.rex_queue.append(entry)

    def _try_integrate(self, entry: InFlight) -> bool:
        """RLE at rename: eliminate the load if the IT has its signature."""
        signature = self.meta.signature[entry.seq]
        if signature is None:
            return False
        it_entry = self.it.lookup(signature)
        if it_entry is None:
            self.it.create(signature, entry, ssn=self.ssn.rename, from_store=False)
            return False
        entry.eliminated = True
        entry.issued = True  # never enters the issue queue
        entry.marked = True
        entry.elim_bypass = it_entry.from_store
        entry.it_signature = signature
        entry.squash_reuse = it_entry.creator_squashed or it_entry.creator.seq == entry.seq
        entry.exec_value = it_entry.value
        if entry.size == 4:
            entry.exec_value &= 0xFFFF_FFFF
        if entry.squash_reuse:
            # SVW cannot cover squash reuse (section 4.3 corner case).
            entry.svw = -1
        else:
            entry.svw = it_entry.ssn
        if it_entry.creator.done or it_entry.creator.squashed:
            self._schedule_completion(entry, self.cycle + 1)
        else:
            entry.pending_srcs += 1
            it_entry.creator.add_waiter(entry)
        return True

    def _dispatch_store(self, entry: InFlight) -> None:
        self.sq_occ += 1
        self.iq_occ += 1
        entry.ssn = self.ssn.dispatch_store()
        store_words = self.store_words
        for word in self.meta.words[entry.seq]:
            bucket = store_words.get(word)
            if bucket is None:
                store_words[word] = [entry]
            else:
                bucket.append(entry)
        heappush(self._unresolved, (entry.seq, entry))
        if self.store_sets is not None:
            previous = self.store_sets.store_dispatched(entry.pc, entry.seq)
            if previous is not None:
                blocker = self.inflight_by_seq.get(previous)
                if blocker is not None and blocker.kind == KIND_STORE and not blocker.done:
                    entry.pending_srcs += 1
                    blocker.add_waiter(entry)
        if self._on_store_dispatch is not None:
            self._on_store_dispatch(entry)
        if self.it is not None:
            signature = self.meta.signature[entry.seq]
            if signature is not None:
                self.it.create(signature, entry, ssn=entry.ssn, from_store=True)
        if self._uses_rex:
            self.rex_queue.append(entry)

    # ------------------------------------------------------------------ flushes

    def _ordering_flush(self, victim: InFlight, store: InFlight) -> None:
        """Conventional LQ search hit: flush the load and younger."""
        self.stats.ordering_flushes += 1
        if self.store_sets is not None:
            self.store_sets.train(victim.pc, store.pc)
        self._squash_from(victim.seq)

    def _rex_failure_flush(self, load: InFlight) -> None:
        """Re-execution mismatch: the load commits corrected; flush younger."""
        store_pc = self.spct.lookup(load.addr)
        self.lsu.on_rex_failure(load, store_pc)
        if self.it is not None and load.it_signature is not None:
            self.it.invalidate(load.it_signature)
        self._squash_from(load.seq + 1)

    def _svw_only_flush(self, load: InFlight) -> None:
        """SVW-as-replacement mode: positive test flushes and refetches."""
        self.stats.svw_only_flushes += 1
        store_pc = self.spct.lookup(load.addr)
        self.lsu.on_rex_failure(load, store_pc)
        if self.store_sets is not None and store_pc is not None:
            self.store_sets.train(load.pc, store_pc)
        # The refetched copy must not re-integrate a stale reuse value (its
        # re-issued access alone is guaranteed correct), and must not flush
        # a second time on the same stale SSBF state (forward progress).
        if self.it is not None and load.it_signature is not None:
            self.it.invalidate(load.it_signature)
        self._svw_retried.add(load.seq)
        self._squash_from(load.seq)

    def _squash_from(self, flush_seq: int) -> None:
        """Remove every in-flight instruction with seq >= flush_seq."""
        self._worked = True
        self.stats.flushes += 1
        rob = self.rob
        m_words = self.meta.words
        store_words = self.store_words
        on_squash = self._on_squash
        while rob and rob[-1].seq >= flush_seq:
            entry = rob.pop()
            entry.squashed = True
            del self.inflight_by_seq[entry.seq]
            kind = entry.kind
            if not entry.issued and not entry.eliminated:
                self.iq_occ -= 1
                if entry.pending_srcs == 0:
                    # The entry sits in the ready heap; remember the stale
                    # member so the issue loop knows it still has one to
                    # drop (see _ready_stale).
                    self._ready_stale += 1
            if entry.dst_reg >= 0:
                self.reg_occ -= 1
            if kind == KIND_LOAD:
                self.lq_occ -= 1
                if on_squash is not None:
                    on_squash(entry)
            elif kind == KIND_STORE:
                self.sq_occ -= 1
                for word in m_words[entry.seq]:
                    stores = store_words.get(word)
                    if stores:
                        if stores[-1] is entry:
                            stores.pop()
                        else:  # pragma: no cover - defensive
                            try:
                                stores.remove(entry)
                            except ValueError:
                                pass
                        if not stores:
                            del store_words[word]
                if self.store_sets is not None:
                    self.store_sets.store_done(entry.pc, entry.seq)
                if on_squash is not None:
                    on_squash(entry)
        uncommitted = self._uncommitted_loads
        while uncommitted and uncommitted[-1] >= flush_seq:
            uncommitted.pop()
        rex_queue = self.rex_queue
        while rex_queue and rex_queue[-1].seq >= flush_seq:
            rex_queue.pop()
        self.ssn.squash_to(self.sq_occ)
        if self.it is not None:
            self.it.on_squash(flush_seq, keep_squash_reuse=self.config.squash_reuse)
        if self.fetch_blocker is not None and self.fetch_blocker.squashed:
            self.fetch_blocker = None
        self.fetch_seq = flush_seq
        self.fetch_resume = max(self.fetch_resume, self.cycle + self.config.flush_penalty)
        if (
            self.config.wrong_path_injection
            and self.svw is not None
            and self.svw.config.speculative_updates
        ):
            self._inject_wrong_path_updates(flush_seq)

    def _inject_invalidation(self) -> None:
        """Synthetic NLQ-SM coherence invalidation (see DESIGN.md).

        A remote agent invalidates the line of a recently-touched load
        address.  All in-flight loads become vulnerable (the NLQ-SM
        natural filter marks them); the SSBF receives a pretend-store of
        ``SSN_RENAME + 1`` covering every word of the line.  The
        invalidation is *silent* -- it carries no remote data -- so
        single-thread functional correctness is preserved while the
        re-execution cost is measured faithfully.
        """
        line_addr = None
        for entry in reversed(self.rob):
            if entry.kind == KIND_LOAD and entry.issued:
                line_addr = entry.addr & ~63
                break
        if line_addr is None:
            return
        self.hierarchy.invalidate(line_addr)
        if self.svw is not None:
            self.svw.record_invalidation(line_addr)
        for entry in self.rob:
            if entry.kind == KIND_LOAD and entry.rex_state is _PENDING:
                entry.marked = True

    def _inject_wrong_path_updates(self, flush_seq: int) -> None:
        """Model SSBF pollution by wrong-path stores (see DESIGN.md)."""
        assert self.svw is not None
        for seq in range(flush_seq, min(flush_seq + 8, self._trace_len)):
            addrs = self.trace.wrong_path_addrs.get(seq)
            if addrs:
                for addr in addrs:
                    self.svw.record_store(addr, 8, self.ssn.rename + 1)
                break
