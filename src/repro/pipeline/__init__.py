"""Cycle-driven out-of-order superscalar timing model.

This is the substrate the paper's evaluation runs on (section 4): a
superscalar processor with register renaming, out-of-order issue,
aggressive branch prediction, a two-level memory system, store-sets
memory-dependence prediction, and an in-order pre-commit *re-execution
pipeline* sharing the data-cache read/write port with store retirement
(Figure 1).

Entry points:

- :class:`~repro.pipeline.config.MachineConfig` plus the factory helpers
  :func:`~repro.pipeline.config.eight_wide` /
  :func:`~repro.pipeline.config.four_wide`;
- :class:`~repro.pipeline.processor.Processor` -- construct with a config
  and a trace, call :meth:`run`, receive
  :class:`~repro.pipeline.stats.SimStats`.
"""

from repro.pipeline.config import MachineConfig, RexMode, eight_wide, four_wide
from repro.pipeline.processor import Processor
from repro.pipeline.stats import SimStats

__all__ = [
    "MachineConfig",
    "Processor",
    "RexMode",
    "SimStats",
    "eight_wide",
    "four_wide",
]
