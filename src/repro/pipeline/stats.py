"""Simulation statistics.

All load-percentage statistics follow the paper's convention: percentages
of *retired* (committed) loads.  Wrong-path work (squashed instructions)
consumes bandwidth in the timing model but does not appear in the rates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.fingerprint import stable_digest


@dataclass(slots=True)
class SimStats:
    """Counters collected by one :class:`~repro.pipeline.processor.Processor` run."""

    config_name: str = ""
    workload: str = ""

    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    # -- re-execution accounting (committed loads only) -------------------------
    #: Loads marked for potential re-execution by the active optimizations.
    marked_loads: int = 0
    #: Marked loads that actually re-executed (accessed the data cache).
    reexecuted_loads: int = 0
    #: Marked loads the SVW filter excused.
    filtered_loads: int = 0
    #: Re-executions that mismatched and triggered a flush.
    rex_failures: int = 0
    #: SVW-only mode: positive tests that triggered flushes.
    svw_only_flushes: int = 0

    # -- optimization-specific breakdowns ------------------------------------------
    #: SSQ: committed loads that accessed the FSQ.
    fsq_loads: int = 0
    #: SSQ: committed stores allocated FSQ entries.
    fsq_stores: int = 0
    #: RLE: committed loads eliminated by load reuse.
    eliminated_reuse: int = 0
    #: RLE: committed loads eliminated by speculative memory bypassing.
    eliminated_bypass: int = 0
    #: RLE: eliminated loads that were squash reuse.
    squash_reuse_loads: int = 0
    #: Committed loads that received a store-forwarded value.
    forwarded_loads: int = 0

    # -- speculation events ------------------------------------------------------------
    branch_mispredicts: int = 0
    btb_misfetches: int = 0
    ordering_flushes: int = 0  # baseline LQ-search violations
    flushes: int = 0  # all pipeline squashes
    ssn_drains: int = 0
    store_set_waits: int = 0

    # -- structural-hazard visibility -----------------------------------------------------
    #: Cycles the re-execution pipe stalled waiting for the shared D$ port.
    rex_port_stalls: int = 0
    #: Cycles store commit stalled behind incomplete older load re-execution.
    serialization_stalls: int = 0
    dispatch_stalls: dict[str, int] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def reexec_rate(self) -> float:
        """Fraction of retired loads that re-executed (the figures' top panels)."""
        if not self.committed_loads:
            return 0.0
        return self.reexecuted_loads / self.committed_loads

    @property
    def marked_rate(self) -> float:
        if not self.committed_loads:
            return 0.0
        return self.marked_loads / self.committed_loads

    @property
    def elimination_rate(self) -> float:
        if not self.committed_loads:
            return 0.0
        return (self.eliminated_reuse + self.eliminated_bypass) / self.committed_loads

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "SimStats":
        payload = dict(payload)
        payload["dispatch_stalls"] = dict(payload.get("dispatch_stalls") or {})
        return cls(**payload)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Stable digest of every counter (used by equivalence tests and the
        result cache to assert bit-identical simulation outcomes)."""
        return stable_digest(self.to_dict())

    def note_dispatch_stall(self, reason: str) -> None:
        self.dispatch_stalls[reason] = self.dispatch_stalls.get(reason, 0) + 1

    def summary(self) -> str:
        lines = [
            f"{self.config_name} on {self.workload}:",
            f"  cycles={self.cycles} committed={self.committed} IPC={self.ipc:.3f}",
            f"  loads={self.committed_loads} marked={self.marked_rate:.1%} "
            f"re-executed={self.reexec_rate:.1%} filtered={self.filtered_loads}",
            f"  flushes={self.flushes} (rex={self.rex_failures}, "
            f"ordering={self.ordering_flushes}, mispredicts={self.branch_mispredicts})",
        ]
        return "\n".join(lines)


def speedup(base: SimStats, other: SimStats) -> float:
    """Percent IPC improvement of ``other`` over ``base``."""
    if base.ipc == 0:
        return 0.0
    return (other.ipc / base.ipc - 1.0) * 100.0
