"""Simulation statistics.

All load-percentage statistics follow the paper's convention: percentages
of *retired* (committed) loads.  Wrong-path work (squashed instructions)
consumes bandwidth in the timing model but does not appear in the rates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.fingerprint import stable_digest


@dataclass(slots=True)
class SimStats:
    """Counters collected by one :class:`~repro.pipeline.processor.Processor` run."""

    config_name: str = ""
    workload: str = ""

    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    # -- re-execution accounting (committed loads only) -------------------------
    #: Loads marked for potential re-execution by the active optimizations.
    marked_loads: int = 0
    #: Marked loads that actually re-executed (accessed the data cache).
    reexecuted_loads: int = 0
    #: Marked loads the SVW filter excused.
    filtered_loads: int = 0
    #: Re-executions that mismatched and triggered a flush.
    rex_failures: int = 0
    #: SVW-only mode: positive tests that triggered flushes.
    svw_only_flushes: int = 0

    # -- optimization-specific breakdowns ------------------------------------------
    #: SSQ: committed loads that accessed the FSQ.
    fsq_loads: int = 0
    #: SSQ: committed stores allocated FSQ entries.
    fsq_stores: int = 0
    #: RLE: committed loads eliminated by load reuse.
    eliminated_reuse: int = 0
    #: RLE: committed loads eliminated by speculative memory bypassing.
    eliminated_bypass: int = 0
    #: RLE: eliminated loads that were squash reuse.
    squash_reuse_loads: int = 0
    #: Committed loads that received a store-forwarded value.
    forwarded_loads: int = 0

    # -- speculation events ------------------------------------------------------------
    branch_mispredicts: int = 0
    btb_misfetches: int = 0
    ordering_flushes: int = 0  # baseline LQ-search violations
    flushes: int = 0  # all pipeline squashes
    ssn_drains: int = 0
    store_set_waits: int = 0

    # -- structural-hazard visibility -----------------------------------------------------
    #: Cycles the re-execution pipe stalled waiting for the shared D$ port.
    rex_port_stalls: int = 0
    #: Cycles store commit stalled behind incomplete older load re-execution.
    serialization_stalls: int = 0
    dispatch_stalls: dict[str, int] = field(default_factory=dict)

    # -- scheduler observability (excluded from the fingerprint) ----------------------
    #: Idle-cycle jumps the skip-ahead scheduler took.
    skip_jumps: int = 0
    #: Total cycles those jumps covered (the simulated-but-not-stepped work).
    skipped_cycles: int = 0
    #: What ended each jump: wake-up cause -> jump count.  Causes are the
    #: candidates of ``Processor._next_event_cycle`` (completion, commit,
    #: rex_port, rex_inflight, fetch_resume, invalidation, watchdog) plus
    #: ``max_cycles`` for jumps truncated by a ``run(max_cycles=...)`` cap.
    wakeup_causes: dict[str, int] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def reexec_rate(self) -> float:
        """Fraction of retired loads that re-executed (the figures' top panels)."""
        if not self.committed_loads:
            return 0.0
        return self.reexecuted_loads / self.committed_loads

    @property
    def marked_rate(self) -> float:
        if not self.committed_loads:
            return 0.0
        return self.marked_loads / self.committed_loads

    @property
    def elimination_rate(self) -> float:
        if not self.committed_loads:
            return 0.0
        return (self.eliminated_reuse + self.eliminated_bypass) / self.committed_loads

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; round-trips through :meth:`from_dict`.

        Counter mappings are emitted key-sorted so the encoding is
        canonical regardless of increment order -- a run that crossed the
        remote wire (whose JSON frames sort keys) serializes byte-identical
        to the in-process run.  Fingerprints never depended on the order
        (:func:`~repro.fingerprint.stable_digest` canonicalizes again).
        """
        payload = asdict(self)
        payload["dispatch_stalls"] = dict(sorted(self.dispatch_stalls.items()))
        payload["wakeup_causes"] = dict(sorted(self.wakeup_causes.items()))
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "SimStats":
        payload = dict(payload)
        payload["dispatch_stalls"] = dict(payload.get("dispatch_stalls") or {})
        payload["wakeup_causes"] = dict(payload.get("wakeup_causes") or {})
        return cls(**payload)  # type: ignore[arg-type]

    #: Counters that describe the *scheduler*, not the simulated machine:
    #: they differ between ``skip_ahead`` on and off (and between skip
    #: implementations) while the architectural outcome is identical, so
    #: the fingerprint -- whose contract is "bit-identical machine
    #: behaviour" across backends, PRs, and snapshots -- must not see them.
    OBSERVABILITY_FIELDS = frozenset(
        {"skip_jumps", "skipped_cycles", "wakeup_causes"}
    )

    def fingerprint(self) -> str:
        """Stable digest of every architectural counter (used by equivalence
        tests and the result cache to assert bit-identical simulation
        outcomes).  Scheduler-observability counters are excluded -- see
        :data:`OBSERVABILITY_FIELDS`."""
        payload = self.to_dict()
        for name in self.OBSERVABILITY_FIELDS:
            payload.pop(name, None)
        return stable_digest(payload)

    def note_dispatch_stall(self, reason: str) -> None:
        self.dispatch_stalls[reason] = self.dispatch_stalls.get(reason, 0) + 1

    def summary(self) -> str:
        lines = [
            f"{self.config_name} on {self.workload}:",
            f"  cycles={self.cycles} committed={self.committed} IPC={self.ipc:.3f}",
            f"  loads={self.committed_loads} marked={self.marked_rate:.1%} "
            f"re-executed={self.reexec_rate:.1%} filtered={self.filtered_loads}",
            f"  flushes={self.flushes} (rex={self.rex_failures}, "
            f"ordering={self.ordering_flushes}, mispredicts={self.branch_mispredicts})",
        ]
        if self.skip_jumps:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.wakeup_causes.items())
            )
            lines.append(
                f"  skip-ahead: {self.skipped_cycles} cycles in "
                f"{self.skip_jumps} jumps (wake-ups: {causes})"
            )
        return "\n".join(lines)


def speedup(base: SimStats, other: SimStats) -> float:
    """Percent IPC improvement of ``other`` over ``base``."""
    if base.ipc == 0:
        return 0.0
    return (other.ipc / base.ipc - 1.0) * 100.0
