"""Machine configurations (paper section 4).

Two base machines:

- **8-wide** (NLQ and SSQ studies): 512-entry ROB, 128-entry LQ, 64-entry
  SQ, 200 issue-queue entries, 448 registers; issues 5 integer, 2 FP,
  2 load, 2 store, 1 branch per cycle.
- **4-wide** (RLE study): 128-entry ROB, 32-entry LQ, 16-entry SQ, 50
  issue-queue entries, 160 registers; issues 3 integer, 1 FP, 1 load,
  1 store, 1 branch per cycle.

Common: 15-stage base pipeline, hybrid predictor + BTB, store-sets, single
store-retirement port, 2-cycle L1s / 15-cycle L2 / 150-cycle memory.
Loads against a conventional associative SQ take 4 cycles ("CACTI
simulations show that at 90nm, an SQ of this size has 1.7x the access time
of an 8KB single-ported data cache bank"); the SSQ restores the 2-cycle
load.  Re-execution adds two pipeline stages (four under RLE, which must
read addresses and values from the register file); SVW adds one more.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace

from repro.core.svw import SVWConfig
from repro.fingerprint import stable_digest
from repro.memsys.hierarchy import HierarchyConfig


class RexMode(enum.Enum):
    """How marked loads are verified."""

    #: No re-execution machinery at all (pure conventional baseline).
    NONE = "none"
    #: In-order pre-commit re-execution through the shared D$ port.
    REEXECUTE = "reexecute"
    #: Ideal re-execution: zero latency, infinite bandwidth (the paper's
    #: ``+PERFECT`` configurations).
    PERFECT = "perfect"
    #: Section 6 future work: no re-execution at all; a positive SSBF test
    #: directly triggers a flush and trains the predictors.
    SVW_ONLY = "svw_only"


class LSUKind(enum.Enum):
    CONVENTIONAL = "conventional"
    NLQ = "nlq"
    SSQ = "ssq"


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Full description of one simulated machine."""

    name: str

    # -- widths and window sizes ---------------------------------------------
    width: int = 8
    rob_size: int = 512
    iq_size: int = 200
    lq_size: int = 128
    sq_size: int = 64
    num_regs: int = 448

    # -- per-cycle issue bandwidth ---------------------------------------------
    int_issue: int = 5
    fp_issue: int = 2
    load_issue: int = 2
    store_issue: int = 2
    branch_issue: int = 1

    # -- memory / front end -----------------------------------------------------
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    #: Effective load-to-use latency of the L1D path, *including* the SQ
    #: search where one exists (4 with a 64-entry associative SQ, 2 for SSQ).
    load_latency: int = 4
    store_retire_ports: int = 1
    #: Redirect penalty on a branch misprediction (front-end refill).
    mispredict_penalty: int = 12
    #: Penalty when a taken branch misses in the BTB (re-fetch from decode).
    btb_penalty: int = 3
    #: Flush penalty for memory-ordering squashes (same refill path).
    flush_penalty: int = 12

    # -- load-store unit variant -----------------------------------------------
    lsu: LSUKind = LSUKind.CONVENTIONAL
    fsq_size: int = 16
    fsq_ports: int = 1
    forward_buffer_entries: int = 8

    # -- optimizations ------------------------------------------------------------
    rle: bool = False
    it_entries: int = 512
    it_assoc: int = 2
    squash_reuse: bool = True

    # -- shared-memory traffic (NLQ-SM extension) -------------------------------------
    #: Cycles between synthetic coherence invalidations (0 = none).
    #: Invalidations mark all in-flight loads (the NLQ-SM natural filter:
    #: "loads that are in the window during a cache line invalidation")
    #: and write SSN_RENAME+1 into the SSBF banks for the line.
    invalidation_interval: int = 0

    # -- simulation limits -----------------------------------------------------------
    #: Abort the simulation if no instruction commits for this many cycles
    #: (deadlock detector).  Long traces with very large miss penalties or
    #: wide invalidation intervals may legitimately need a bigger window;
    #: the skip-ahead scheduler honours this bound exactly, so raising it
    #: never changes results short of an actual deadlock.
    watchdog_cycles: int = 100_000

    # -- verification ---------------------------------------------------------------
    rex_mode: RexMode = RexMode.NONE
    #: Extra re-execution pipeline stages beyond the base commit stage
    #: (2 for NLQ/SSQ, 4 for RLE; 0 when re-execution is absent/perfect).
    rex_stages: int = 0
    svw: SVWConfig | None = None
    #: Inject wrong-path SSBF updates at flushes (stress knob; see DESIGN.md).
    wrong_path_injection: bool = False

    # -- predictors -------------------------------------------------------------------
    store_sets: bool = True
    predictor_entries: int = 8192
    btb_entries: int = 2048

    def __post_init__(self) -> None:
        if self.rex_mode is RexMode.SVW_ONLY and self.svw is None:
            raise ValueError("svw_only verification requires an SVW config")
        if self.rex_mode is RexMode.NONE and self.lsu is not LSUKind.CONVENTIONAL:
            raise ValueError(f"{self.lsu} requires a re-execution mode")
        if self.rex_mode is RexMode.NONE and self.rle:
            raise ValueError("RLE requires a re-execution mode")

    @property
    def uses_rex(self) -> bool:
        return self.rex_mode in (RexMode.REEXECUTE, RexMode.PERFECT, RexMode.SVW_ONLY)

    @property
    def commit_depth(self) -> int:
        """Cycles between writeback and commit eligibility.

        The base commit stage is 1 cycle; real re-execution elongates the
        commit pipeline by ``rex_stages`` and SVW adds one more (section 4).
        """
        depth = 1
        if self.rex_mode is RexMode.REEXECUTE:
            depth += self.rex_stages
        if self.svw is not None and self.rex_mode in (RexMode.REEXECUTE, RexMode.SVW_ONLY):
            depth += 1
        return depth

    def derive(self, name: str, **overrides: object) -> "MachineConfig":
        """A copy with ``overrides`` applied (configs are immutable)."""
        return replace(self, name=name, **overrides)  # type: ignore[arg-type]

    # -- serialization / fingerprinting -----------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; round-trips through :meth:`from_dict`."""
        payload = asdict(self)
        payload["lsu"] = self.lsu.value
        payload["rex_mode"] = self.rex_mode.value
        payload["hierarchy"] = self.hierarchy.to_dict()
        payload["svw"] = self.svw.to_dict() if self.svw is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "MachineConfig":
        payload = dict(payload)
        payload["lsu"] = LSUKind(payload["lsu"])
        payload["rex_mode"] = RexMode(payload["rex_mode"])
        payload["hierarchy"] = HierarchyConfig.from_dict(payload["hierarchy"])  # type: ignore[arg-type]
        if payload["svw"] is not None:
            payload["svw"] = SVWConfig.from_dict(payload["svw"])  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Stable digest of everything that affects simulation results.

        ``name`` is display metadata (two differently-named but otherwise
        identical configs simulate identically), so it is excluded --
        this is what lets overlapping sweeps share result-cache entries.
        """
        payload = self.to_dict()
        del payload["name"]
        return stable_digest(payload)


def eight_wide(name: str = "8wide-base", **overrides: object) -> MachineConfig:
    """The paper's 8-way issue NLQ/SSQ machine."""
    return MachineConfig(name=name).derive(name, **overrides) if overrides else MachineConfig(name=name)


def four_wide(name: str = "4wide-base", **overrides: object) -> MachineConfig:
    """The paper's 4-way issue RLE machine."""
    base = MachineConfig(
        name=name,
        width=4,
        rob_size=128,
        iq_size=50,
        lq_size=32,
        sq_size=16,
        num_regs=160,
        int_issue=3,
        fp_issue=1,
        load_issue=1,
        store_issue=1,
        branch_issue=1,
        load_latency=2,
    )
    return base.derive(name, **overrides) if overrides else base
