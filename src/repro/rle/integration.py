"""The integration table (register integration; Petric, Bracy & Roth).

An instruction is redundant "if it performs the same operation on the same
physical register inputs as an instruction which has an IT entry".  For
loads the operation signature is (address-producer, offset, size): the
producer seq of the base register plays the role of the physical register
name, exactly the information renaming exposes.

Entries are created by non-redundant loads (attaching ``SSN_RENAME``, which
begins the vulnerability window for any future load that reuses the
result -- section 3.4) and by stores (speculative memory bypassing: the
redundant load takes the store's data and is vulnerable to stores younger
than the store itself).

Squash reuse: a squashed instruction's entry remains; its re-fetched
incarnation can integrate with its own squashed execution.  SVW must be
disabled for such loads (the paper's corner case: a forwarding store that
existed on the squashed path but not the correct path is invisible to the
SSBF), so entries remember that their creator was squashed.  The
``SVW-SQU`` configuration deletes such entries instead, forfeiting squash
reuse to make the remaining re-executions filterable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.inst import DynInst, Signature, memory_signature
from repro.pipeline.inflight import InFlight

__all__ = ["ITEntry", "IntegrationTable", "Signature", "signature_of"]


def signature_of(inst: DynInst) -> Signature | None:
    """Operation signature of a memory instruction, or None if untrackable.

    Memory ops whose base register predates the trace window (no producer)
    are not tracked: their "physical register" identity is unknown.  The
    computation lives in :func:`repro.isa.inst.memory_signature` so traces
    can precompute it per instruction; this is the RLE-facing name.
    """
    return memory_signature(inst)


@dataclass(slots=True)
class ITEntry:
    """One integration-table entry."""

    signature: Signature
    creator: InFlight
    #: Start of the vulnerability window for integrating loads:
    #: SSN_RENAME at creation (load entries) or the store's own SSN.
    ssn: int
    #: Creator is a store (speculative memory bypassing) vs a load (reuse).
    from_store: bool
    #: Creator was squashed after executing (squash-reuse entry).
    creator_squashed: bool = False
    stamp: int = 0

    @property
    def ready(self) -> bool:
        """The creator's value exists (it executed or was itself integrated)."""
        return self.creator.done

    @property
    def value(self) -> int:
        if self.from_store:
            return self.creator.store_value
        return self.creator.exec_value


class IntegrationTable:
    """Set-associative IT with LRU replacement."""

    __slots__ = ("_sets_count", "_assoc", "_sets", "_stamp", "hits", "misses")

    def __init__(self, entries: int = 512, assoc: int = 2) -> None:
        if entries % assoc:
            raise ValueError("entries must divide into ways")
        self._sets_count = entries // assoc
        self._assoc = assoc
        self._sets: list[dict[Signature, ITEntry]] = [
            dict() for _ in range(self._sets_count)
        ]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _set_for(self, signature: Signature) -> dict[Signature, ITEntry]:
        return self._sets[hash(signature) % self._sets_count]

    def lookup(self, signature: Signature) -> ITEntry | None:
        """Find a usable entry (creator value available)."""
        entry = self._set_for(signature).get(signature)
        if entry is None or not entry.ready:
            self.misses += 1
            return None
        self.hits += 1
        self._stamp += 1
        entry.stamp = self._stamp
        return entry

    def create(self, signature: Signature, creator: InFlight, ssn: int, from_store: bool) -> None:
        ways = self._set_for(signature)
        self._stamp += 1
        if signature not in ways and len(ways) >= self._assoc:
            victim = min(ways.values(), key=lambda e: e.stamp)
            del ways[victim.signature]
        ways[signature] = ITEntry(
            signature=signature,
            creator=creator,
            ssn=ssn,
            from_store=from_store,
            stamp=self._stamp,
        )

    def invalidate(self, signature: Signature) -> None:
        """Drop an entry (re-execution proved it stale)."""
        self._set_for(signature).pop(signature, None)

    def on_squash(self, flush_seq: int, keep_squash_reuse: bool) -> None:
        """Handle a pipeline flush at ``flush_seq``.

        Entries created by squashed instructions either become squash-reuse
        entries (SVW disabled for their integrators) or are deleted (the
        ``SVW-SQU`` configuration).
        """
        for ways in self._sets:
            doomed = []
            for signature, entry in ways.items():
                if entry.creator.seq >= flush_seq:
                    if keep_squash_reuse:
                        entry.creator_squashed = True
                    else:
                        doomed.append(signature)
            for signature in doomed:
                del ways[signature]

    def flash_clear(self) -> None:
        """SSN wrap-around drain: all window anchors are invalid."""
        for ways in self._sets:
            ways.clear()

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
