"""Redundant load elimination by register integration (section 2.4).

- :mod:`repro.rle.integration` -- the integration table (IT) that detects
  *load reuse* (two loads performing the same operation on the same
  register inputs) and *speculative memory bypassing* (a load reading what
  an older store just wrote through the same address computation).

Eliminated loads never execute: they take their value at rename, occupy an
empty LQ entry, and must re-execute before commit to detect *false
eliminations* -- an unaccounted-for intervening store.  This gives RLE a
natural re-execution filter (only eliminated loads re-execute), but at a
25-40% elimination rate that filter still yields a substantial
re-execution stream, which is where SVW comes in (section 3.4).
"""

from repro.rle.integration import IntegrationTable, ITEntry, signature_of

__all__ = ["ITEntry", "IntegrationTable", "signature_of"]
