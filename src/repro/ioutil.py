"""Atomic file-write helpers shared by every on-disk cache and snapshot.

Sweep workers routinely share a ``--cache-dir`` (and now a trace cache), so
every writer in the tree goes through :func:`atomic_write_bytes`: the
payload lands in a uniquely-named temporary file in the *target directory*
(same filesystem, so the final ``os.replace`` is atomic) and is renamed
into place.  A concurrent reader sees either the old file, the new file,
or a miss -- never a torn payload; racing writers last-write-win whole
files.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

#: The process umask, read once at import (the set-and-restore dance is not
#: thread-safe, and concurrent sweep writers are exactly our callers).
_UMASK = os.umask(0)
os.umask(_UMASK)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        # mkstemp creates 0600; give the final file the same umask-governed
        # mode a plain open() would, so shared cache dirs stay shareable.
        os.fchmod(fd, 0o666 & ~_UMASK)
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def append_bytes(path: str | Path, data: bytes) -> None:
    """Append ``data`` to ``path``, creating it if missing.

    Appends are NOT atomic the way :func:`atomic_write_bytes` is -- a
    crash mid-``write`` can leave a torn tail.  Callers own that risk:
    the campaign journal (the one appender in the tree) writes one JSON
    record per line and replays tolerantly, skipping any line a torn
    append damaged (see ``campaign._read_journal_records``).
    """
    with open(path, "ab") as handle:
        handle.write(data)


def append_text(path: str | Path, text: str) -> None:
    """Text-mode convenience wrapper over :func:`append_bytes`."""
    append_bytes(path, text.encode("utf-8"))
