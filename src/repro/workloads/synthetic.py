"""Epoch-v2 numpy block generator: whole-block column-native sampling.

This is the live synthetic-trace generator.  It samples instructions in
fixed blocks of :data:`BLOCK_SLOTS` slots with batched numpy RNG draws --
kind selection, static-PC skew, address/alias/size selection, dependence
distances and branch outcomes are all vectorized over the block -- and
scatters the results straight into the codec's flat columns.  Only the
few inherently sequential decisions (exact silent-store values against
the functional memory image, collision claiming, wrong-path payloads)
run as small per-block Python loops over a handful of rows.

This module deliberately draws a **different RNG stream** than the frozen
epoch-v1 pair (:mod:`repro.workloads.synthetic_v1` /
:mod:`repro.workloads.reference`): moving from per-instruction
``random.Random`` draws to per-block ``numpy`` PCG64 streams is the
one-time fingerprint break recorded in ROADMAP.md.  v2 traces are pinned
by their own golden fingerprints (``tests/workloads/test_v2_goldens.py``)
and the v1 pair remains importable as the draw-exact oracle.

Determinism and the prefix property are preserved by construction:

- every block ``b`` seeds an independent ``PCG64`` stream from
  ``SeedSequence(entropy=f(seed, name), spawn_key=(b,))``, so block
  content never depends on the requested instruction budget;
- all cross-block state (producer table, forwarding/non-redundant load
  records, stream cursor, functional memory, pending collisions) evolves
  only forward, so a shorter trace is an exact prefix of a longer one
  with the same seed;
- the budget is met by truncating whole generated blocks.

The synthetic address space and static-PC partitioning are unchanged from
v1 (the *statistical* contract of :class:`WorkloadProfile` is the same;
only the draw mechanics changed):

==============  ==========================================================
``0x1000_0000``  stack: spill/fill slots addressed off a per-block frame
                 pointer producer (stores in the low half, loads high)
``0x2000_0000``  globals: a small set of hot words (high locality, silent
                 stores, redundancy)
``0x3000_0000``  heap: a configurable working set reached through pointer
                 producers (cache misses, ambiguous stores)
``0x4000_0000``  stream: sequential cursor (compression-style workloads)
``0x5000_0000``  forward: dedicated slots for the designated forwarding
                 (spill/fill-style) store/load pairs
==============  ==========================================================
"""

from __future__ import annotations

import zlib
from array import array

import numpy as np

from repro.isa.coltrace import ColumnTrace
from repro.isa.inst import NO_PRODUCER
from repro.isa.ops import OpClass
from repro.memsys.memimg import MemoryImage
from repro.workloads.profile import WorkloadProfile

#: Trace-identity epoch.  Bumped exactly once per deliberate fingerprint
#: break; recorded in codec headers and benchmark payloads so readers can
#: refuse cross-epoch comparisons with a clear error.
TRACE_EPOCH = 2

#: Instruction slots sampled per block (each slot expands to one or two
#: rows; a short pointer preamble precedes every block).
BLOCK_SLOTS = 4096

STACK_BASE = 0x1000_0000
GLOBAL_BASE = 0x2000_0000
HEAP_BASE = 0x3000_0000
STREAM_BASE = 0x4000_0000
#: Dedicated slots for the designated forwarding (spill/fill-style) pairs;
#: plain stores never write here, so address-indexed training (SPCT) maps
#: forwarding loads back to forwarding-site stores and nothing else.
FORWARD_BASE = 0x5000_0000

# Static PC ranges by role (disjoint; sized generously).
_PC_ALU = 0x10_0000
_PC_LOAD = 0x20_0000
_PC_STORE = 0x30_0000
_PC_BRANCH = 0x40_0000
_PC_FWD_LOAD = 0x50_0000
_PC_FWD_STORE = 0x60_0000
_PC_AMB_STORE = 0x70_0000
_PC_COLLIDE_LOAD = 0x80_0000
_PC_REDUNDANT_LOAD = 0x90_0000
_PC_GLOBAL_LOAD = 0xA0_0000
_PC_GLOBAL_STORE = 0xB0_0000
_PC_FALSE_ELIM_STORE = 0xC0_0000

#: Offset-namespace bias for forwarding-region accesses (must clear the
#: largest plain stack offset so signatures stay one-to-one with addresses).
_FWD_OFFSET_BIAS = 1 << 24

_OP_IALU = int(OpClass.IALU)
_OP_IMUL = int(OpClass.IMUL)
_OP_FALU = int(OpClass.FALU)
_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)

_I64 = np.int64

#: Typecode -> numpy dtype for the final array.array conversion.
_TC_DTYPE = {
    "B": np.uint8,
    "I": np.uint32,
    "Q": np.uint64,
    "i": np.int32,
    "q": np.int64,
}
_TC_BOUNDS = {
    "B": (0, 2**8 - 1),
    "I": (0, 2**32 - 1),
    "Q": (0, 2**64 - 1),
    "i": (-(2**31), 2**31 - 1),
    "q": (-(2**63), 2**63 - 1),
}


def _np_column(col: np.ndarray, narrow: str, wide: str) -> array:
    """Convert an int64 numpy column to the narrowest fitting typecode."""
    tc = narrow
    if narrow != wide and len(col):
        lo, hi = _TC_BOUNDS[narrow]
        mn, mx = int(col.min()), int(col.max())
        if mn < lo or mx > hi:
            tc = wide
    out = array(tc)
    out.frombytes(np.ascontiguousarray(col.astype(_TC_DTYPE[tc])).tobytes())
    return out


class _GrowBuf:
    """Append-only int64 buffer with amortized-doubling growth."""

    __slots__ = ("data", "n")

    def __init__(self, cap: int = 4096) -> None:
        self.data = np.empty(cap, dtype=_I64)
        self.n = 0

    def append(self, arr: np.ndarray) -> None:
        need = self.n + len(arr)
        if need > len(self.data):
            cap = max(need, 2 * len(self.data))
            grown = np.empty(cap, dtype=_I64)
            grown[: self.n] = self.data[: self.n]
            self.data = grown
        self.data[self.n : need] = arr
        self.n = need

    def view(self) -> np.ndarray:
        return self.data[: self.n]


def _exp_dist(u: np.ndarray, mean: float) -> np.ndarray:
    """Geometric-ish dependence distances: ``floor(Exp(mean)) + 1``."""
    return (-np.log1p(-u) * mean).astype(_I64) + 1


def _skew_idx(u: np.ndarray, count: int) -> np.ndarray:
    """Hot-skewed static index selection (quadratic bias to low indices)."""
    return np.minimum((count * u * u).astype(_I64), count - 1)


class _BlockGenerator:
    """Stateful whole-block sampler.  One instance generates one trace."""

    def __init__(self, profile: WorkloadProfile, n_insts: int, seed: int) -> None:
        profile.validate()
        self.profile = profile
        self.n_insts = n_insts
        # crc32, not hash(): string hashes are randomized per process and
        # the trace stream must be identical across processes.  The "svw2:"
        # prefix keeps the v2 entropy pool disjoint from v1's "svw:" pool.
        self.entropy = (
            (seed << 16) ^ zlib.crc32(("svw2:" + profile.name).encode())
        ) & 0xFFFF_FFFF_FFFF
        # -- profile-derived constants (mirrors the v1 parameterization) --
        self.mean_dep = max(1.0, profile.dep_distance)
        self.mean_dep2 = max(1.0, profile.dep_distance * 2)
        self.mean_fwd = max(1.0, profile.forward_distance)
        self.mean_red = max(1.0, profile.redundancy_distance)
        self.half_slots = max(1, profile.stack_slots // 2)
        half_heap = profile.heap_bytes // 2
        # Candidate counts use ceiling division: heap_bytes is only
        # required to be a multiple of 8, so the half-heap widths need not
        # divide 8 evenly and flooring would drop the last candidate.
        self.half_heap = half_heap
        self.heap_load_n = (profile.heap_bytes - half_heap + 7) // 8
        self.heap_store_n = (half_heap + 7) // 8
        gf_load = profile.global_frac
        gf_store = profile.global_frac * profile.store_global_scale
        self.t_stack = profile.stack_frac
        self.t_global_load = profile.stack_frac + gf_load
        self.t_global_store = profile.stack_frac + gf_store
        self.t_stream_load = self.t_global_load + profile.stream_frac
        self.t_stream_store = self.t_global_store + profile.stream_frac
        self.fwd_share = min(
            0.9,
            0.05
            + profile.forward_frac
            * profile.load_frac
            / max(0.01, profile.store_frac),
        )
        self.addr_pcs = max(16, profile.static_alu_pcs // 4)
        # Kind-selection thresholds (cumulative mix bands).
        self.kind_edges = np.array(
            [
                profile.load_frac,
                profile.load_frac + profile.store_frac,
                profile.load_frac + profile.store_frac + profile.branch_frac,
                profile.load_frac
                + profile.store_frac
                + profile.branch_frac
                + profile.imul_frac,
                profile.mix_total(),
            ],
            dtype=np.float64,
        )
        self.kind_ops = np.array(
            [_OP_LOAD, _OP_STORE, _OP_BRANCH, _OP_IMUL, _OP_FALU, _OP_IALU],
            dtype=_I64,
        )
        # Branch site biases: hard-to-predict branches sit at the *cold*
        # end of the (quadratically hot-skewed) site distribution.
        nb = profile.static_branches
        n_hard = max(1, int(nb * profile.hard_branch_frac))
        bias = np.full(nb, profile.easy_branch_bias, dtype=np.float64)
        bias[nb - n_hard :] = profile.hard_branch_bias
        self.branch_bias = bias
        # -- cross-block carried state --
        self.block = 0
        self.rows_total = 0
        self.prod = _GrowBuf()  # rows of value producers, in row order
        self.fwd_rows = _GrowBuf()  # forwarding-site store records
        self.fwd_addr = _GrowBuf()
        self.fwd_size = _GrowBuf()
        self.fwd_base = _GrowBuf()
        self.fwd_offset = _GrowBuf()
        self.fwd_site = _GrowBuf()
        self.nr_rows = _GrowBuf()  # non-redundant load records (reuse pool)
        self.nr_addr = _GrowBuf()
        self.nr_size = _GrowBuf()
        self.nr_base = _GrowBuf()
        self.nr_offset = _GrowBuf()
        self.last_load_row = -1
        self.stream_cursor = 0
        self.value_counter = 0
        self.memory = MemoryImage()
        self.pending_collisions: list[tuple[int, int, int, int, int]] = []
        self.wrong_path: dict[int, tuple[int, ...]] = {}
        # Accumulated per-block column chunks (int64), concatenated once.
        self.chunks: dict[str, list[np.ndarray]] = {
            name: []
            for name in (
                "pc",
                "op",
                "dst_reg",
                "addr",
                "size",
                "store_value",
                "store_data_seq",
                "taken",
                "base_seq",
                "offset",
                "src_count",
                "src_flat",
            )
        }

    # -- helpers --------------------------------------------------------------

    def _rng(self) -> np.random.Generator:
        seq = np.random.SeedSequence(entropy=self.entropy, spawn_key=(self.block,))
        return np.random.Generator(np.random.PCG64(seq))

    def _pick_producer(self, p_count: np.ndarray, dist: np.ndarray) -> np.ndarray:
        """Producer rows at ``dist`` back within a 128-deep window.

        ``p_count[i]`` is the number of value producers at rows strictly
        before row ``i``; the gather indexes the global producer table.
        """
        back = np.minimum(dist, np.minimum(p_count, 128))
        return self.prod.view()[p_count - back]

    # -- one block -------------------------------------------------------------

    def _generate_block(self) -> None:
        prof = self.profile
        B = BLOCK_SLOTS
        b = self.block
        rng = self._rng()
        rows_before = self.rows_total

        # All RNG consumption happens here, as named uniform draws in one
        # fixed order -- the block's content is a pure function of these
        # arrays plus carried state, never of the instruction budget.
        u_kind = rng.random(B)
        u_pc = rng.random(B)
        u_dst = rng.random(B)
        u_size = rng.random(B)
        u_root = rng.random(B)
        u_nsrc = rng.random(B)
        u_d1 = rng.random(B)
        u_d2 = rng.random(B)
        u_sregion = rng.random(B)
        u_samb = rng.random(B)
        u_sfwd = rng.random(B)
        u_ssite = rng.random(B)
        u_soff = rng.random(B)
        u_sjit = rng.random(B)
        u_sdata = rng.random(B)
        u_silent = rng.random(B)
        u_scoll = rng.random(B)
        u_scollw = rng.random(B)
        u_lrole = rng.random(B)
        u_lregion = rng.random(B)
        u_loff = rng.random(B)
        u_ldist = rng.random(B)
        u_lac = rng.random(B)
        u_lacd = rng.random(B)
        u_taken = rng.random(B)
        u_wp = rng.random(B)
        u_wpc = rng.random(B)
        u_wpa1 = rng.random(B)
        u_wpa2 = rng.random(B)
        u_felim = rng.random(B)

        # -- kinds -------------------------------------------------------------
        op_slot = self.kind_ops[np.searchsorted(self.kind_edges, u_kind, side="right")]
        is_load = op_slot == _OP_LOAD
        is_store = op_slot == _OP_STORE
        is_branch = op_slot == _OP_BRANCH
        is_alu = ~(is_load | is_store | is_branch)

        # -- roles (position-independent, so row layout can follow) ------------
        # Store roles first: ambiguity needs only "a load exists earlier".
        load_seen = np.cumsum(is_load) - is_load
        amb_ok = (load_seen > 0) | (self.last_load_row >= 0)
        amb = is_store & amb_ok & (u_samb < prof.ambiguous_store_frac)
        reg_global_s = (
            is_store & (u_sregion >= self.t_stack) & (u_sregion < self.t_global_store)
        )
        fwd_s = is_store & ~amb & ~reg_global_s & (u_sfwd < self.fwd_share)
        plain_s = is_store & ~amb & ~reg_global_s & ~fwd_s
        stack_s = plain_s & (u_sregion < self.t_stack)
        stream_s = (
            plain_s
            & (u_sregion >= self.t_global_store)
            & (u_sregion < self.t_stream_store)
        )
        heap_s = plain_s & ~stack_s & ~stream_s

        # Load roles: forwarding needs a forwarding-site store on record,
        # redundancy a non-redundant load on record.  Loads whose role draw
        # falls in the forwarding band can never be redundant, so both
        # bands outside [f, f+r) count toward the reuse pool a priori.
        f = prof.forward_frac
        r = prof.redundancy_frac
        fwd_seen = self.fwd_rows.n + np.cumsum(fwd_s) - fwd_s
        fwd_l = is_load & (u_lrole < f) & (fwd_seen > 0)
        certain_nr = is_load & ~((u_lrole >= f) & (u_lrole < f + r))
        nr_seen = self.nr_rows.n + np.cumsum(certain_nr) - certain_nr
        red_l = is_load & (u_lrole >= f) & (u_lrole < f + r) & (nr_seen > 0)
        fresh_l = is_load & ~fwd_l & ~red_l
        stack_l = fresh_l & (u_lregion < self.t_stack)
        global_l = (
            fresh_l & (u_lregion >= self.t_stack) & (u_lregion < self.t_global_load)
        )
        stream_l = (
            fresh_l
            & (u_lregion >= self.t_global_load)
            & (u_lregion < self.t_stream_load)
        )
        heap_l = fresh_l & ~stack_l & ~global_l & ~stream_l

        # A redundant load with an intervening same-address store expands
        # its slot to two rows: the false-eliminating store, then the load.
        felim = red_l & (u_felim < prof.false_elim_frac)

        # -- row layout --------------------------------------------------------
        # 5 preamble pointer producers, then one row per slot plus one extra
        # row (before the load) for each false-elimination store.
        extra = felim.astype(_I64)
        local_main = 5 + np.arange(B, dtype=_I64) + np.cumsum(extra)
        n_rows = 5 + B + int(extra.sum())
        main_rows = rows_before + local_main  # global row ids == seqs
        fp_row = rows_before  # frame pointer
        gp_row = rows_before + 1  # global base
        hp_row = rows_before + 2  # heap pointer
        frame_off = (b * prof.stack_slots * 8) % (1 << 20)

        # Value-producer table: preamble rows and every load/ALU row, in
        # row order.  Appended *before* the gathers -- per-row producer
        # counts keep every gather strictly in the past.
        is_prod_slot = is_load | is_alu
        local_prod = np.zeros(n_rows, dtype=bool)
        local_prod[:5] = True
        local_prod[local_main] = is_prod_slot
        p_carry = self.prod.n
        p_row = p_carry + np.cumsum(local_prod) - local_prod
        p_main = p_row[local_main]
        self.prod.append(rows_before + np.flatnonzero(local_prod))

        # -- per-slot columns --------------------------------------------------
        pc = np.empty(B, dtype=_I64)
        dst = np.where(is_prod_slot, 1 + (u_dst * 24).astype(_I64), NO_PRODUCER)
        addr = np.zeros(B, dtype=_I64)
        size = np.where(
            is_load | is_store, np.where(u_size < prof.sub_quad_frac, 4, 8), 0
        )
        base = np.full(B, NO_PRODUCER, dtype=_I64)
        offset = np.zeros(B, dtype=_I64)
        taken = np.zeros(B, dtype=_I64)
        sdseq = np.full(B, NO_PRODUCER, dtype=_I64)

        # ALU rows.
        pc[is_alu] = _PC_ALU + _skew_idx(u_pc[is_alu], prof.static_alu_pcs) * 4

        # Branch rows.
        site_b = _skew_idx(u_pc, prof.static_branches)
        pc[is_branch] = _PC_BRANCH + site_b[is_branch] * 4
        taken[is_branch] = (u_taken < self.branch_bias[site_b])[is_branch]

        # -- store addresses ---------------------------------------------------
        site_s = (u_ssite * prof.forward_pcs).astype(_I64)
        # plain/stack: spill slots in the low half of the frame.
        off_stack = (u_soff * self.half_slots).astype(_I64) * 8
        addr[stack_s] = STACK_BASE + (frame_off + off_stack[stack_s]) % (1 << 20)
        offset[stack_s] = off_stack[stack_s]
        base[stack_s] = fp_row
        pc[stack_s | heap_s | stream_s] = (
            _PC_STORE
            + _skew_idx(u_pc[stack_s | heap_s | stream_s], prof.static_store_pcs) * 4
        )
        # hot globals (quadratic word skew).
        word_s = np.minimum(
            (prof.global_words * u_soff * u_soff).astype(_I64), prof.global_words - 1
        )
        addr[reg_global_s] = GLOBAL_BASE + word_s[reg_global_s] * 8
        offset[reg_global_s] = word_s[reg_global_s] * 8
        base[reg_global_s] = gp_row
        pc[reg_global_s] = _PC_GLOBAL_STORE + (word_s[reg_global_s] % 64) * 4
        # heap (store half).
        off_heap_s = (u_soff * self.heap_store_n).astype(_I64) * 8
        addr[heap_s] = HEAP_BASE + off_heap_s[heap_s]
        offset[heap_s] = off_heap_s[heap_s]
        base[heap_s] = hp_row
        # ambiguous stores: address hangs off the most recent load; the
        # full address doubles as the offset so signatures stay one-to-one.
        ll = np.empty(B, dtype=_I64)
        ll[0] = self.last_load_row
        ll[1:] = np.where(is_load, main_rows, -1)[:-1]
        last_load_excl = np.maximum.accumulate(ll)
        amb_addr = HEAP_BASE + off_heap_s
        addr[amb] = amb_addr[amb]
        offset[amb] = amb_addr[amb]
        base[amb] = last_load_excl[amb]
        pc[amb] = _PC_AMB_STORE + site_s[amb] * 4
        # forwarding-site stores: dedicated slots off the frame pointer.
        fwd_slot = (
            (b & 63) * prof.forward_pcs * 4 + site_s * 4 + (u_sjit * 4).astype(_I64)
        )
        addr[fwd_s] = FORWARD_BASE + fwd_slot[fwd_s] * 8
        offset[fwd_s] = _FWD_OFFSET_BIAS + fwd_slot[fwd_s] * 8
        base[fwd_s] = fp_row
        pc[fwd_s] = _PC_FWD_STORE + site_s[fwd_s] * 4
        # store data producers.
        d_data = _exp_dist(u_sdata, self.mean_dep2)
        sdseq[is_store] = self._pick_producer(p_main[is_store], d_data[is_store])

        # -- fresh load addresses ----------------------------------------------
        off_lstack = (self.half_slots + (u_loff * self.half_slots).astype(_I64)) * 8
        addr[stack_l] = STACK_BASE + (frame_off + off_lstack[stack_l]) % (1 << 20)
        offset[stack_l] = off_lstack[stack_l]
        base[stack_l] = fp_row
        pc[stack_l | heap_l | stream_l] = (
            _PC_LOAD
            + _skew_idx(u_pc[stack_l | heap_l | stream_l], prof.static_load_pcs) * 4
        )
        word_l = np.minimum(
            (prof.global_words * u_loff * u_loff).astype(_I64), prof.global_words - 1
        )
        addr[global_l] = GLOBAL_BASE + word_l[global_l] * 8
        offset[global_l] = word_l[global_l] * 8
        base[global_l] = gp_row
        pc[global_l] = _PC_GLOBAL_LOAD + (word_l[global_l] % 64) * 4
        off_lheap = self.half_heap + (u_loff * self.heap_load_n).astype(_I64) * 8
        addr[heap_l] = HEAP_BASE + off_lheap[heap_l]
        offset[heap_l] = off_lheap[heap_l]
        base[heap_l] = hp_row
        # stream cursor: loads and stores share one sequential cursor.
        stream_m = stream_l | stream_s
        rank = np.cumsum(stream_m) - stream_m
        raw = (
            self.stream_cursor + prof.stream_stride * (rank + 1)
        ) % (1 << 22)
        stream_addr = (STREAM_BASE + raw) & ~(np.maximum(size, 1) - 1)
        addr[stream_m] = stream_addr[stream_m]
        offset[stream_m] = 0
        self.stream_cursor = (
            self.stream_cursor + prof.stream_stride * int(stream_m.sum())
        ) % (1 << 22)
        # freshly-computed addresses: an in-window producer feeds the base
        # register, delaying AGEN; the full address becomes the offset.
        ac = fresh_l & (u_lac < prof.addr_comp_frac)
        d_ac = _exp_dist(u_lacd, self.mean_dep)
        base[ac] = self._pick_producer(p_main[ac], d_ac[ac])
        offset[ac] = addr[ac]

        # -- forwarding loads (copy a recorded forwarding store) ---------------
        fwd_block_rows = main_rows[fwd_s]
        self.fwd_rows.append(fwd_block_rows)
        self.fwd_addr.append(addr[fwd_s])
        self.fwd_size.append(size[fwd_s])
        self.fwd_base.append(base[fwd_s])
        self.fwd_offset.append(offset[fwd_s])
        self.fwd_site.append(site_s[fwd_s])
        if fwd_l.any():
            rows_v = self.fwd_rows.view()
            g = main_rows[fwd_l]
            d = _exp_dist(u_ldist[fwd_l], self.mean_fwd)
            hi = np.searchsorted(rows_v, g, side="left") - 1
            j = np.clip(np.searchsorted(rows_v, g - d, side="right") - 1, 0, hi)
            addr[fwd_l] = self.fwd_addr.view()[j]
            size[fwd_l] = self.fwd_size.view()[j]
            base[fwd_l] = self.fwd_base.view()[j]
            offset[fwd_l] = self.fwd_offset.view()[j]
            pc[fwd_l] = _PC_FWD_LOAD + self.fwd_site.view()[j] * 4

        # -- true collisions (ambiguous store hits the next fresh load) --------
        overrides: list[tuple[int, int, int, int]] = []
        fresh_idx = np.flatnonzero(fresh_l)
        fresh_rows_g = main_rows[fresh_idx]
        claimed = np.zeros(len(fresh_idx), dtype=bool)

        def _claim(after: int, until: int, a: int, s: int, site: int) -> bool:
            j = int(np.searchsorted(fresh_rows_g, after, side="right"))
            while j < len(fresh_idx) and claimed[j]:
                j += 1
            if j < len(fresh_idx) and fresh_rows_g[j] <= until:
                claimed[j] = True
                overrides.append((int(fresh_idx[j]), a, s, site))
                return True
            return False

        for pend in self.pending_collisions:
            _claim(*pend)
        self.pending_collisions = []
        block_end = rows_before + n_rows
        for s_idx in np.flatnonzero(amb & (u_scoll < prof.collision_frac)).tolist():
            row = int(main_rows[s_idx])
            until = row + 2 + int(u_scollw[s_idx] * 11)
            hit = _claim(row, until, int(addr[s_idx]), int(size[s_idx]),
                         int(site_s[s_idx]))
            if not hit and until >= block_end:
                self.pending_collisions.append(
                    (row, until, int(addr[s_idx]), int(size[s_idx]),
                     int(site_s[s_idx]))
                )
        for slot, a, sz, site in overrides:
            addr[slot] = a
            size[slot] = sz
            offset[slot] = 0
            base[slot] = NO_PRODUCER
            pc[slot] = _PC_COLLIDE_LOAD + site * 4

        # -- redundant loads (copy a recorded non-redundant load) --------------
        nonred = fresh_l | fwd_l
        self.nr_rows.append(main_rows[nonred])
        self.nr_addr.append(addr[nonred])
        self.nr_size.append(size[nonred])
        self.nr_base.append(base[nonred])
        self.nr_offset.append(offset[nonred])
        if red_l.any():
            rows_v = self.nr_rows.view()
            g = main_rows[red_l]
            d = _exp_dist(u_ldist[red_l], self.mean_red)
            hi = np.searchsorted(rows_v, g, side="left") - 1
            j = np.clip(np.searchsorted(rows_v, g - d, side="right") - 1, 0, hi)
            addr[red_l] = self.nr_addr.view()[j]
            size[red_l] = self.nr_size.view()[j]
            base[red_l] = self.nr_base.view()[j]
            offset[red_l] = self.nr_offset.view()[j]
            pc[red_l] = _PC_REDUNDANT_LOAD + (offset[red_l] % 64) * 4

        self.last_load_row = int(
            np.max(np.where(is_load, main_rows, self.last_load_row))
        )

        # -- sources -----------------------------------------------------------
        src_n = np.zeros(B, dtype=_I64)
        src_a = np.full(B, NO_PRODUCER, dtype=_I64)
        src_b = np.full(B, NO_PRODUCER, dtype=_I64)
        rooted = u_root < prof.root_frac
        d1 = _exp_dist(u_d1, self.mean_dep)
        d2 = _exp_dist(u_d2, self.mean_dep)
        s1 = self._pick_producer(p_main, d1)
        s2 = self._pick_producer(p_main, d2)
        one_alu = is_alu & ~rooted
        src_n[one_alu] = 1
        src_a[one_alu] = s1[one_alu]
        pair = one_alu & (u_nsrc < 0.5) & (s1 != s2)
        src_n[pair] = 2
        src_a[pair] = np.minimum(s1, s2)[pair]
        src_b[pair] = np.maximum(s1, s2)[pair]
        one_br = is_branch & ~rooted
        src_n[one_br] = 1
        src_a[one_br] = s1[one_br]
        load_src = is_load & (base >= 0)
        src_n[load_src] = 1
        src_a[load_src] = base[load_src]
        st_two = is_store & (base >= 0) & (base != sdseq)
        st_one = is_store & ~st_two
        src_n[st_one] = 1
        src_a[st_one] = sdseq[st_one]
        src_n[st_two] = 2
        src_a[st_two] = np.minimum(base, sdseq)[st_two]
        src_b[st_two] = np.maximum(base, sdseq)[st_two]

        # -- scatter into local row-major columns ------------------------------
        c_pc = np.zeros(n_rows, dtype=_I64)
        c_op = np.full(n_rows, _OP_IALU, dtype=_I64)
        c_dst = np.full(n_rows, NO_PRODUCER, dtype=_I64)
        c_addr = np.zeros(n_rows, dtype=_I64)
        c_size = np.zeros(n_rows, dtype=_I64)
        c_sval = np.zeros(n_rows, dtype=_I64)
        c_sdseq = np.full(n_rows, NO_PRODUCER, dtype=_I64)
        c_taken = np.zeros(n_rows, dtype=_I64)
        c_base = np.full(n_rows, NO_PRODUCER, dtype=_I64)
        c_off = np.zeros(n_rows, dtype=_I64)
        c_srcn = np.zeros(n_rows, dtype=_I64)
        c_srca = np.full(n_rows, NO_PRODUCER, dtype=_I64)
        c_srcb = np.full(n_rows, NO_PRODUCER, dtype=_I64)
        silent = np.zeros(n_rows, dtype=bool)
        # Preamble: frame/global/heap pointers plus two seed producers.
        c_pc[:5] = _PC_ALU
        c_dst[:5] = np.arange(29, 24, -1, dtype=_I64)
        c_op[local_main] = op_slot
        c_pc[local_main] = pc
        c_dst[local_main] = dst
        c_addr[local_main] = addr
        c_size[local_main] = size
        c_sdseq[local_main] = sdseq
        c_taken[local_main] = taken
        c_base[local_main] = base
        c_off[local_main] = offset
        c_srcn[local_main] = src_n
        c_srca[local_main] = src_a
        c_srcb[local_main] = src_b
        silent[local_main] = is_store & (u_silent < prof.silent_store_frac)
        # False-elimination stores: one row before their redundant load,
        # rewriting the load's address with a fresh (never silent) value.
        if felim.any():
            fe_local = local_main[felim] - 1
            c_op[fe_local] = _OP_STORE
            c_addr[fe_local] = addr[felim]
            c_size[fe_local] = size[felim]
            c_off[fe_local] = offset[felim]
            c_pc[fe_local] = _PC_FALSE_ELIM_STORE + (offset[felim] % 64)
            fe_data = self.prod.view()[p_row[fe_local] - 1]
            c_sdseq[fe_local] = fe_data
            c_srcn[fe_local] = 1
            c_srca[fe_local] = fe_data

        # -- store values (exact silent semantics vs the functional image) -----
        mem = self.memory
        counter = self.value_counter
        addr_l = c_addr.tolist()
        size_l = c_size.tolist()
        silent_l = silent.tolist()
        for row in np.flatnonzero(c_op == _OP_STORE).tolist():
            a, s = addr_l[row], size_l[row]
            if silent_l[row]:
                value = mem.read(a, s)
            else:
                counter += 1
                value = counter
            mem.write(a, value, s)
            c_sval[row] = value
        self.value_counter = counter

        # -- wrong-path address payloads ---------------------------------------
        wp = is_branch & (u_wp < 0.4)
        heap_words = prof.heap_bytes // 8
        wpa1 = HEAP_BASE + (u_wpa1 * heap_words).astype(_I64) * 8
        wpa2 = GLOBAL_BASE + (u_wpa2 * prof.global_words).astype(_I64) * 8
        for s_idx in np.flatnonzero(wp).tolist():
            addrs = (int(wpa1[s_idx]),)
            if u_wpc[s_idx] < 0.5:
                addrs += (int(wpa2[s_idx]),)
            self.wrong_path[int(main_rows[s_idx])] = addrs

        # -- flat source list (CSR values; offsets derive from counts) ---------
        starts = np.cumsum(c_srcn) - c_srcn
        flat = np.empty(int(c_srcn.sum()), dtype=_I64)
        m1 = c_srcn >= 1
        m2 = c_srcn == 2
        flat[starts[m1]] = c_srca[m1]
        flat[starts[m2] + 1] = c_srcb[m2]

        chunks = self.chunks
        chunks["pc"].append(c_pc)
        chunks["op"].append(c_op)
        chunks["dst_reg"].append(c_dst)
        chunks["addr"].append(c_addr)
        chunks["size"].append(c_size)
        chunks["store_value"].append(c_sval)
        chunks["store_data_seq"].append(c_sdseq)
        chunks["taken"].append(c_taken)
        chunks["base_seq"].append(c_base)
        chunks["offset"].append(c_off)
        chunks["src_count"].append(c_srcn)
        chunks["src_flat"].append(flat)
        self.rows_total += n_rows
        self.block += 1

    # -- invariants ------------------------------------------------------------

    def _self_check(
        self,
        cols: dict[str, np.ndarray],
        offsets: np.ndarray,
        flat: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Vectorized generation-time invariant check (mirrors
        :meth:`ColumnTrace.validate`, at numpy speed)."""
        n = len(cols["op"])
        rows = np.arange(n, dtype=_I64)
        op = cols["op"]
        base = cols["base_seq"]
        addr = cols["addr"]
        size = cols["size"]
        offset = cols["offset"]
        sdseq = cols["store_data_seq"]
        if not bool(np.all((base == NO_PRODUCER) | ((base >= 0) & (base < rows)))):
            raise ValueError("v2 generator: base producer not strictly earlier")
        if not bool(np.all((sdseq == NO_PRODUCER) | ((sdseq >= 0) & (sdseq < rows)))):
            raise ValueError("v2 generator: store data producer not strictly earlier")
        owner = np.repeat(rows, counts)
        if not bool(np.all((flat >= 0) & (flat < owner))):
            raise ValueError("v2 generator: source not strictly earlier")
        mem = (op == _OP_LOAD) | (op == _OP_STORE)
        if not bool(np.all(np.isin(size[mem], (4, 8)))):
            raise ValueError("v2 generator: bad memory access size")
        if not bool(np.all(addr[mem] % np.maximum(size[mem], 1) == 0)):
            raise ValueError("v2 generator: unaligned memory access")
        sig = mem & (base >= 0)
        sb, so, sa = base[sig], offset[sig], addr[sig]
        order = np.lexsort((sa, so, sb))
        sb, so, sa = sb[order], so[order], sa[order]
        same_key = (sb[1:] == sb[:-1]) & (so[1:] == so[:-1])
        if bool(np.any(same_key & (sa[1:] != sa[:-1]))):
            raise ValueError("v2 generator: signature maps to two addresses")

    # -- finalize --------------------------------------------------------------

    def run(self) -> ColumnTrace:
        n = self.n_insts
        while self.rows_total < n:
            self._generate_block()
        chunks = self.chunks
        cols = {
            name: np.concatenate(chunks[name])[:n]
            for name in (
                "pc",
                "op",
                "dst_reg",
                "addr",
                "size",
                "store_value",
                "store_data_seq",
                "taken",
                "base_seq",
                "offset",
            )
        }
        counts = np.concatenate(chunks["src_count"])[:n]
        offsets = np.zeros(n + 1, dtype=_I64)
        np.cumsum(counts, out=offsets[1:])
        flat = np.concatenate(chunks["src_flat"])[: int(offsets[-1])]
        self._self_check(cols, offsets, flat, counts)
        arrays = {
            "pc": _np_column(cols["pc"], "I", "Q"),
            "op": _np_column(cols["op"], "B", "B"),
            "dst_reg": _np_column(cols["dst_reg"], "i", "q"),
            "addr": _np_column(cols["addr"], "I", "Q"),
            "size": _np_column(cols["size"], "B", "B"),
            "store_value": _np_column(cols["store_value"], "Q", "Q"),
            "store_data_seq": _np_column(cols["store_data_seq"], "i", "q"),
            "taken": _np_column(cols["taken"], "B", "B"),
            "base_seq": _np_column(cols["base_seq"], "i", "q"),
            "offset": _np_column(cols["offset"], "i", "q"),
            "src_offsets": _np_column(offsets, "I", "Q"),
            "src_flat": _np_column(flat, "i", "q"),
        }
        wrong_path = {
            seq: addrs for seq, addrs in self.wrong_path.items() if seq < n
        }
        return ColumnTrace(
            self.profile.name,
            arrays,
            initial_memory={},
            wrong_path_addrs=wrong_path,
        )


def generate_trace(
    profile: WorkloadProfile, n_insts: int, seed: int | None = None
) -> ColumnTrace:
    """Generate a deterministic **epoch-v2** trace for ``profile``.

    Block-sampled on numpy (see the module docstring); deterministic per
    ``(profile, seed)`` across platforms and prefix-stable in ``n_insts``.

    Args:
        profile: The workload description.
        n_insts: Number of dynamic instructions to emit.
        seed: Generator seed; defaults to ``profile.seed``.
    """
    if n_insts <= 0:
        raise ValueError("n_insts must be positive")
    gen = _BlockGenerator(profile, n_insts, profile.seed if seed is None else seed)
    return gen.run()
