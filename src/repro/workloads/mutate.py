"""Differential-fuzzing trace mutations (semantics-preserving by design).

Each :class:`MutationOp` perturbs one axis the paper's re-execution
machinery is sensitive to, while keeping the trace *valid* -- every
mutation preserves the :meth:`~repro.isa.coltrace.ColumnTrace.validate`
invariants, and because :func:`~repro.isa.golden.golden_execute` is purely
self-consistent (stores write the trace's ``store_value``, loads read the
functional memory), any valid mutated trace still has well-defined golden
semantics.  A correct simulator therefore commits golden values on *any*
mutated trace; a divergence flagged by the fuzzer is a simulator bug, not
a malformed input.

The axes:

``alias``
    Remap a fraction of memory accesses onto a tiny shared address pool
    (a dedicated, generator-untouched slice of the heap region).  This
    manufactures dense same-address store/store/load chains -- forwarding
    from stale suppliers, SSBF conflict pressure, memory-ordering
    violations -- far beyond what stationary profiles produce.
``wrap``
    Convert a fraction of branches into extra stores (to the pool),
    inflating SSN allocation pressure so narrow-``ssn_bits``
    configurations hit wraparound drains mid-trace.
``sizemix``
    Flip access sizes (8B -> 4B freely; 4B -> 8B where alignment allows),
    exercising sub-quadword forwarding and SSBF granularity corners.
``storeset``
    Collapse memory-access PCs onto a few shared static sites, mistraining
    every PC-indexed predictor (store sets, FSQ steering, RLE tables).

Address-signature safety: the generator's convention for ambiguous /
address-computed accesses is ``offset == addr`` (the full address *is*
the offset), so a remapped row sets ``offset = new_addr`` and the
``(base_seq, offset) -> addr`` map stays one-to-one -- any pre-existing
key equal to ``(b, new_addr)`` necessarily already mapped to ``new_addr``.
The pool lives at ``HEAP_BASE + 8MiB``, beyond any generated heap/stream
offset, so no un-mutated row can collide with it.

Determinism: every op draws from its own ``numpy`` PCG64 stream seeded by
integer/CRC arithmetic over ``(op.seed, op.kind)`` -- same op, same
choices, on any platform.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.fingerprint import stable_digest
from repro.isa.coltrace import ColumnTrace
from repro.isa.inst import NO_PRODUCER
from repro.isa.ops import OpClass
from repro.workloads.synthetic import HEAP_BASE, _PC_LOAD, _PC_STORE

MUTATION_KINDS = ("alias", "wrap", "sizemix", "storeset")

#: Shared-address pool: 8-aligned, in a heap slice the generator never
#: reaches (generated heap offsets are bounded by ``heap_bytes`` << 8MiB).
POOL_BASE = HEAP_BASE + (1 << 23)
POOL_SLOTS = 6

_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)


@dataclass(frozen=True, slots=True)
class MutationOp:
    """One mutation pass: ``kind`` applied to ``rate`` of eligible rows."""

    kind: str
    rate: float
    seed: int

    def validate(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"mutation rate {self.rate} out of [0,1]")

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "rate": self.rate, "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "MutationOp":
        return cls(
            kind=str(payload["kind"]),
            rate=float(payload["rate"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[call-overload]
        )


@dataclass(frozen=True, slots=True)
class TraceMutation:
    """An ordered sequence of mutation ops applied to one base trace."""

    ops: tuple[MutationOp, ...]

    def validate(self) -> None:
        if not self.ops:
            raise ValueError("a TraceMutation needs at least one op")
        for op in self.ops:
            op.validate()

    def to_dict(self) -> dict[str, object]:
        return {"ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TraceMutation":
        ops = payload.get("ops")
        if not isinstance(ops, list):
            raise ValueError("mutation payload has no ops list")
        return cls(ops=tuple(MutationOp.from_dict(dict(op)) for op in ops))

    def fingerprint(self) -> str:
        return stable_digest(self.to_dict())

    def describe(self) -> str:
        return "+".join(f"{op.kind}@{op.rate:g}#{op.seed}" for op in self.ops)


def _rng(op: MutationOp) -> np.random.Generator:
    entropy = (op.seed ^ zlib.crc32(f"svw-mut:{op.kind}".encode())) & 0xFFFF_FFFF
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


def _chosen(rng: np.random.Generator, eligible: np.ndarray, rate: float) -> np.ndarray:
    """Deterministically chosen row indices: ``rate`` of ``eligible``."""
    if not len(eligible):
        return eligible
    return eligible[rng.random(len(eligible)) < rate]


class _Columns:
    """Mutable plain-list working copy of a trace's columns."""

    def __init__(self, trace: ColumnTrace) -> None:
        self.name = trace.name
        self.pc = trace.pc.tolist()
        self.op = trace.op.tolist()
        self.dst_reg = trace.dst_reg.tolist()
        self.addr = trace.addr.tolist()
        self.size = trace.size.tolist()
        self.store_value = trace.store_value.tolist()
        self.store_data_seq = trace.store_data_seq.tolist()
        self.taken = trace.taken.tolist()
        self.base_seq = trace.base_seq.tolist()
        self.offset = trace.offset.tolist()
        self.src_offsets = trace.src_offsets.tolist()
        self.src_flat = trace.src_flat.tolist()
        self.initial_memory = dict(trace.initial_memory)
        self.wrong_path = dict(trace.wrong_path_addrs)

    def rebuild(self, name: str) -> ColumnTrace:
        trace = ColumnTrace.from_lists(
            name,
            {
                "pc": self.pc,
                "op": self.op,
                "dst_reg": self.dst_reg,
                "addr": self.addr,
                "size": self.size,
                "store_value": self.store_value,
                "store_data_seq": self.store_data_seq,
                "taken": self.taken,
                "base_seq": self.base_seq,
                "offset": self.offset,
                "src_offsets": self.src_offsets,
                "src_flat": self.src_flat,
            },
            initial_memory=self.initial_memory,
            wrong_path_addrs=self.wrong_path,
        )
        trace.validate()
        return trace


def _mem_rows(cols: _Columns) -> np.ndarray:
    ops = np.asarray(cols.op)
    return np.flatnonzero((ops == _OP_LOAD) | (ops == _OP_STORE))


def _apply_alias(cols: _Columns, op: MutationOp) -> None:
    rng = _rng(op)
    rows = _chosen(rng, _mem_rows(cols), op.rate)
    if not len(rows):
        return
    slots = rng.integers(0, POOL_SLOTS, size=len(rows))
    for i, slot in zip(rows.tolist(), slots.tolist()):
        new = POOL_BASE + slot * 8
        cols.addr[i] = new
        # Full-address offsets keep (base_seq, offset) -> addr one-to-one
        # (the generator's own convention for ambiguous/computed accesses).
        cols.offset[i] = new


def _apply_wrap(cols: _Columns, op: MutationOp) -> None:
    rng = _rng(op)
    branches = np.flatnonzero(np.asarray(cols.op) == _OP_BRANCH)
    rows = _chosen(rng, branches, op.rate)
    if not len(rows):
        return
    slots = rng.integers(0, POOL_SLOTS, size=len(rows))
    values = rng.integers(0, 1 << 63, size=len(rows), dtype=np.int64)
    for i, slot, value in zip(rows.tolist(), slots.tolist(), values.tolist()):
        new = POOL_BASE + slot * 8
        cols.op[i] = _OP_STORE
        cols.addr[i] = new
        cols.offset[i] = new
        cols.size[i] = 8
        cols.store_value[i] = int(value)
        cols.store_data_seq[i] = NO_PRODUCER
        cols.taken[i] = 0
        # No longer a branch: its wrong-path injection slot dies with it.
        cols.wrong_path.pop(i, None)


def _apply_sizemix(cols: _Columns, op: MutationOp) -> None:
    rng = _rng(op)
    rows = _chosen(rng, _mem_rows(cols), op.rate)
    for i in rows.tolist():
        if cols.size[i] == 8:
            cols.size[i] = 4
        elif cols.addr[i] % 8 == 0:
            cols.size[i] = 8


def _apply_storeset(cols: _Columns, op: MutationOp) -> None:
    rng = _rng(op)
    rows = _chosen(rng, _mem_rows(cols), op.rate)
    if not len(rows):
        return
    sites = rng.integers(0, 4, size=len(rows))
    for i, site in zip(rows.tolist(), sites.tolist()):
        base = _PC_LOAD if cols.op[i] == _OP_LOAD else _PC_STORE
        cols.pc[i] = base + 0xF000 + site * 4


_APPLIERS = {
    "alias": _apply_alias,
    "wrap": _apply_wrap,
    "sizemix": _apply_sizemix,
    "storeset": _apply_storeset,
}


def apply_mutation(trace: ColumnTrace, mutation: TraceMutation) -> ColumnTrace:
    """Apply ``mutation``'s ops in order; returns a new, validated trace.

    The result is named ``<base>+mut<digest8>`` so simulator logs and
    reproducers identify the exact mutation without extra bookkeeping.
    """
    mutation.validate()
    cols = _Columns(trace)
    for op in mutation.ops:
        _APPLIERS[op.kind](cols, op)
    return cols.rebuild(f"{trace.name}+mut{mutation.fingerprint()[:8]}")
