"""Frozen **epoch-v1** column-native synthetic generator.

This is the pre-vectorization column-native generator, kept importable --
together with the object-path reference
(:func:`repro.workloads.reference.generate_trace_objects`) -- as the
**v1 oracle pair**: the golden equivalence suite proves
``encode(generate_trace_v1(...)) == encode(generate_trace_objects(...))``
for every shipped profile and seed, pinning the v1 trace identity forever.
The live generator (:func:`repro.workloads.synthetic.generate_trace`) is
the numpy epoch-v2 rewrite; it deliberately draws a different RNG stream
and is gated by its own v2 golden fingerprints.

Do not modify this module except in lock-step with
:mod:`repro.workloads.reference` -- its entire value is standing still.
Nothing in the hot paths imports it.

The generator emits a deterministic dynamic instruction stream whose
*structure* -- dataflow, address regions, forwarding pairs, ambiguous
stores, redundant loads, silent stores, branch biases -- follows a
:class:`~repro.workloads.profile.WorkloadProfile`.  It emits the codec's
flat columns directly -- one row tuple per instruction, transposed once at
the end -- and returns a :class:`~repro.isa.coltrace.ColumnTrace`; the hot
emitters inline their RNG draws (raw ``getrandbits`` rejection loops and
the exact ``expovariate`` arithmetic, reproducing the :mod:`random`
library's draw consumption bit for bit).

Layout of the synthetic address space (all regions disjoint):

==============  ==========================================================
``0x1000_0000``  stack: spill/fill slots addressed off a long-lived frame
                 pointer producer; rewritten frames create forwarding pairs
``0x2000_0000``  globals: a small set of hot words (high locality, silent
                 stores, redundancy)
``0x3000_0000``  heap: a configurable working set reached through pointer
                 producers (cache misses, pointer chasing)
``0x4000_0000``  stream: sequential cursor (compression-style workloads)
==============  ==========================================================

Static PCs are likewise partitioned by role so that PC-indexed predictors
(store-sets, FSQ steering bits, SPCT training) see the stable static
behaviour the paper relies on ("forwarding patterns are stable and the
static set of forwarding stores and loads is small").
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from math import log as _log

from repro.isa.coltrace import ColumnTrace
from repro.isa.inst import NO_PRODUCER
from repro.isa.ops import OpClass
from repro.memsys.memimg import MemoryImage
from repro.workloads.profile import WorkloadProfile

STACK_BASE = 0x1000_0000
GLOBAL_BASE = 0x2000_0000
HEAP_BASE = 0x3000_0000
STREAM_BASE = 0x4000_0000
#: Dedicated slots for the designated forwarding (spill/fill-style) pairs;
#: plain stores never write here, so address-indexed training (SPCT) maps
#: forwarding loads back to forwarding-site stores and nothing else.
FORWARD_BASE = 0x5000_0000

# Static PC ranges by role (disjoint; sized generously).
_PC_ALU = 0x10_0000
_PC_LOAD = 0x20_0000
_PC_STORE = 0x30_0000
_PC_BRANCH = 0x40_0000
_PC_FWD_LOAD = 0x50_0000
_PC_FWD_STORE = 0x60_0000
_PC_AMB_STORE = 0x70_0000
_PC_COLLIDE_LOAD = 0x80_0000
_PC_REDUNDANT_LOAD = 0x90_0000
_PC_GLOBAL_LOAD = 0xA0_0000
_PC_GLOBAL_STORE = 0xB0_0000
_PC_FALSE_ELIM_STORE = 0xC0_0000

_WORD64 = 0xFFFF_FFFF_FFFF_FFFF
#: Offset-namespace bias for forwarding-region accesses (must clear the
#: largest plain stack offset so signatures stay one-to-one with addresses).
_FWD_OFFSET_BIAS = 1 << 24

# Op codes as plain ints (the column values).
_OP_IALU = int(OpClass.IALU)
_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)


@dataclass(slots=True)
class _StoreRecord:
    seq: int
    addr: int
    size: int
    base_seq: int
    offset: int
    site: int
    pc: int = 0


@dataclass(slots=True)
class _LoadRecord:
    seq: int
    addr: int
    size: int
    base_seq: int
    offset: int


class _Generator:
    def __init__(self, profile: WorkloadProfile, n_insts: int, seed: int) -> None:
        profile.validate()
        self.profile = profile
        self.n_insts = n_insts
        # crc32, not hash(): string hashes are randomized per process
        # (PYTHONHASHSEED), and the trace stream must be identical across
        # processes for result caching and pool workers to be reproducible.
        self.rng = random.Random((seed << 16) ^ zlib.crc32(("svw:" + profile.name).encode()) & 0xFFFF_FFFF)
        #: ``randrange``/``randint``/``choice`` all reduce to one
        #: ``_randbelow`` draw in CPython; binding it once strips their
        #: per-call argument plumbing from the emit path without touching
        #: the draw sequence.  (The public-API fallback keeps alternative
        #: interpreters correct, merely slower.)
        self._randbelow = getattr(self.rng, "_randbelow", None) or self.rng.randrange
        #: Precomputed ``expovariate`` rates (the exact ``1.0 / max(1.0, mean)``
        #: floats the reference generator forms per draw).
        self._root_frac = profile.root_frac
        self._inv_dep = 1.0 / max(1.0, profile.dep_distance)
        self._inv_dep2 = 1.0 / max(1.0, profile.dep_distance * 2)
        self._inv_fwd = 1.0 / max(1.0, profile.forward_distance)
        self._inv_red = 1.0 / max(1.0, profile.redundancy_distance)
        #: Profile-constant _randbelow bounds and their getrandbits widths
        #: (k = n.bit_length()), for inlined rejection loops.
        half_slots = max(1, profile.stack_slots // 2)
        self._slots_n, self._slots_k = half_slots, half_slots.bit_length()
        # Candidate counts use randrange's *ceiling* division
        # ((stop - start + step - 1) // step): heap_bytes is only required
        # to be a multiple of 8, so the half-heap widths need not divide 8
        # evenly and flooring would drop the last candidate.
        half_heap = profile.heap_bytes // 2
        n_load = (profile.heap_bytes - half_heap + 7) // 8
        self._heap_load_n, self._heap_load_k = n_load, n_load.bit_length()
        n_store = (half_heap + 7) // 8
        self._heap_store_n, self._heap_store_k = n_store, n_store.bit_length()
        self._fwd_pcs_n = profile.forward_pcs
        self._fwd_pcs_k = profile.forward_pcs.bit_length()
        #: Profile-constant static-PC pool sizes and region-select
        #: thresholds (accumulated left-to-right exactly as the reference
        #: forms them per call).
        self._addr_pcs = max(16, profile.static_alu_pcs // 4)
        gf_load = profile.global_frac
        gf_store = profile.global_frac * profile.store_global_scale
        self._t_stack = profile.stack_frac
        self._t_global_load = profile.stack_frac + gf_load
        self._t_global_store = profile.stack_frac + gf_store
        self._t_stream_load = self._t_global_load + profile.stream_frac
        self._t_stream_store = self._t_global_store + profile.stream_frac
        #: Emitted-instruction count (the next seq).
        self.n = 0
        # The flat columns, accumulated as one row tuple per instruction
        # (a single append beats ten) and transposed once at the end.
        self.rows: list[tuple] = []
        self.src_flat: list[int] = []
        self.src_offsets: list[int] = [0]
        self.memory = MemoryImage()
        self.producers: deque[int] = deque(maxlen=128)
        self.recent_stores: deque[_StoreRecord] = deque(maxlen=96)
        #: Forwarding-site stores only (the designated spill/fill pairs).
        self.recent_fwd_stores: deque[_StoreRecord] = deque(maxlen=48)
        self.recent_loads: deque[_LoadRecord] = deque(maxlen=96)
        #: Loads to the hot-global region (reliably cache-resident); used as
        #: base producers for ambiguous stores so ambiguity windows stay
        #: bounded by the L1 load latency.
        self.recent_cached_loads: deque[int] = deque(maxlen=16)
        self.wrong_path: dict[int, tuple[int, ...]] = {}
        # Region state.
        self.frame = 0
        self.sp_producer = NO_PRODUCER
        self.global_producer = NO_PRODUCER
        self.heap_producers: deque[int] = deque(maxlen=8)
        self.stream_cursor = 0
        self.insts_since_frame = 0
        # Pending true-collision demand: (addr, size, site, expires_at_seq).
        self.pending_collision: tuple[int, int, int, int] | None = None
        # Branch site biases.  Hard-to-predict branches sit at the *cold*
        # end of the (quadratically hot-skewed) site distribution: hot loop
        # back-edges are highly predictable in real programs, data-dependent
        # branches are scattered and cooler.
        n_hard = max(1, int(profile.static_branches * profile.hard_branch_frac))
        self.branch_bias = [
            profile.hard_branch_bias
            if i >= profile.static_branches - n_hard
            else profile.easy_branch_bias
            for i in range(profile.static_branches)
        ]

    # -- helpers --------------------------------------------------------------

    def _pick_srcs(self, max_srcs: int = 2) -> tuple[int, ...]:
        # ``expovariate``-distributed dependence distances are drawn inline
        # (-log(1 - random()) / lambd, the exact library computation) and
        # the one/two-source cases are unrolled -- this runs once or twice
        # per emitted instruction.
        producers = self.producers
        rng = self.rng
        if not producers or rng.random() < self._root_frac:
            return ()
        # The count draw is randint(1, max_srcs) reduced to raw getrandbits
        # with the library's exact rejection behaviour: _randbelow(n) draws
        # n.bit_length() bits and rejects values >= n.
        getrandbits = rng.getrandbits
        if max_srcs == 2:
            second_draw = getrandbits(2)
            while second_draw >= 2:
                second_draw = getrandbits(2)
        else:
            while getrandbits(1):
                pass
            second_draw = 0
        random = rng.random
        inv_dep = self._inv_dep
        n_prod = len(producers)
        dist = int(-_log(1.0 - random()) / inv_dep) + 1
        first = producers[n_prod - (dist if dist < n_prod else n_prod)]
        if not second_draw:
            return (first,)
        dist = int(-_log(1.0 - random()) / inv_dep) + 1
        second = producers[n_prod - (dist if dist < n_prod else n_prod)]
        if first == second:
            return (first,)
        return (first, second) if first < second else (second, first)

    def _skewed_pc(self, base: int, count: int) -> int:
        """Hot-loop-skewed static PC selection (quadratic bias to low indices)."""
        idx = int(count * self.rng.random() ** 2)
        return base + min(idx, count - 1) * 4

    def _emit(
        self,
        pc: int,
        op: int,
        srcs: tuple[int, ...],
        is_producer: bool,
        dst_reg: int = -1,
        addr: int = 0,
        size: int = 0,
        store_value: int = 0,
        store_data_seq: int = NO_PRODUCER,
        taken: bool = False,
        base_seq: int = NO_PRODUCER,
        offset: int = 0,
    ) -> int:
        """Append one instruction row to the columns; returns its seq."""
        seq = self.n
        self.rows.append(
            (
                pc,
                op,
                dst_reg,
                addr,
                size,
                store_value,
                store_data_seq,
                1 if taken else 0,
                base_seq,
                offset,
            )
        )
        src_flat = self.src_flat
        if srcs:
            src_flat.extend(srcs)
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        if is_producer:
            self.producers.append(seq)
        self.insts_since_frame += 1
        return seq

    # -- region address selection ---------------------------------------------

    def _ensure_region_producers(self) -> None:
        """Refresh frame/global/heap pointer producers as needed."""
        profile, rng = self.profile, self.rng
        if self.sp_producer == NO_PRODUCER or self.insts_since_frame > 200:
            # New call frame: an ALU op computes the new frame pointer.
            self.sp_producer = self._emit(
                _PC_ALU, _OP_IALU, (), is_producer=True, dst_reg=29
            )
            self.frame = (self.frame + 1) % 1024
            self.insts_since_frame = 0
        if self.global_producer == NO_PRODUCER:
            self.global_producer = self._emit(
                _PC_ALU + 4, _OP_IALU, (), is_producer=True, dst_reg=28
            )
        if not self.heap_producers or rng.random() < 0.01:
            # A pointer ALU producing a heap base.  Kept dependence-free so
            # that *store* address-resolution delay is controlled solely by
            # ``ambiguous_store_frac`` (load-side address depth comes from
            # ``addr_comp_frac``/``deep_addr_frac`` instead).
            seq = self._emit(
                self._skewed_pc(_PC_ALU + 8, max(8, profile.static_alu_pcs // 8)),
                _OP_IALU,
                (),
                is_producer=True,
                dst_reg=27,
            )
            self.heap_producers.append(seq)

    def _fresh_address(self, for_load: bool = False) -> tuple[int, int, int, int, str]:
        """Pick (addr, size, base_seq, offset, region) for a fresh access.

        Loads frequently receive a freshly-computed base register (see
        ``addr_comp_frac``); store bases are overwhelmingly pre-computed.
        """
        profile, rng = self.profile, self.rng
        self._ensure_region_producers()
        size = 4 if rng.random() < profile.sub_quad_frac else 8
        # Stores rarely target the hot read-mostly globals (the displaced
        # probability falls through to the heap), hence per-kind thresholds.
        if for_load:
            t_global, t_stream = self._t_global_load, self._t_stream_load
        else:
            t_global, t_stream = self._t_global_store, self._t_stream_store
        region = "heap"
        r = rng.random()
        if r < self._t_stack:
            region = "stack"
            # Fresh (non-forwarding) stack traffic uses disjoint slot
            # ranges for loads and stores: compiler-managed frames do not
            # casually reload what an unrelated store just wrote -- all
            # window-distance stack forwarding goes through the designated
            # spill/fill sites instead (see _emit_load's forwarding path).
            half = self._slots_n
            k = self._slots_k
            getrandbits = rng.getrandbits
            slot = getrandbits(k)
            while slot >= half:
                slot = getrandbits(k)
            if for_load:
                slot += half
            offset = slot * 8
            addr = STACK_BASE + (self.frame * profile.stack_slots * 8 + offset) % (1 << 20)
            base_seq = self.sp_producer
        elif r < t_global:
            region = "global"
            word = int(profile.global_words * rng.random() ** 2)
            offset = word * 8
            addr, base_seq = GLOBAL_BASE + offset, self.global_producer
        elif r < t_stream:
            region = "stream"
            addr = STREAM_BASE + self.stream_cursor
            self.stream_cursor = (self.stream_cursor + profile.stream_stride) % (1 << 22)
            offset, base_seq = addr - STREAM_BASE, NO_PRODUCER
        else:
            # Heap access via a pointer producer; loads and stores visit
            # disjoint halves of the working set (same rationale as the
            # stack partition above), with the partition carried by the
            # *offset* so that the address is a pure function of the
            # (base producer, offset) pair -- register-integration
            # signatures must imply address equality, as in real renaming.
            producers = list(self.heap_producers)
            base_seq = producers[self._randbelow(len(producers))]
            half_heap = profile.heap_bytes // 2
            getrandbits = rng.getrandbits
            if for_load:
                n, k = self._heap_load_n, self._heap_load_k
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                offset = half_heap + 8 * r
            else:
                n, k = self._heap_store_n, self._heap_store_k
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                offset = 8 * r
            addr = HEAP_BASE + offset
        if for_load and rng.random() < profile.addr_comp_frac:
            base_seq = self._emit_addr_computation(base_seq)
        return addr, size, base_seq, offset, region

    def _emit_addr_computation(self, region_base: int) -> int:
        """Emit the ALU op that computes a load's effective base register."""
        profile, rng = self.profile, self.rng
        srcs = {region_base} if region_base != NO_PRODUCER else set()
        if rng.random() < profile.deep_addr_frac:
            srcs.update(self._pick_srcs(1))
        count = self._addr_pcs
        idx = int(count * rng.random() ** 2)
        if idx > count - 1:
            idx = count - 1
        seq = self.n
        self.rows.append(
            (_PC_ALU + 32 + idx * 4, _OP_IALU, 26, 0, 0, 0, NO_PRODUCER, 0,
             NO_PRODUCER, 0)
        )
        src_flat = self.src_flat
        if srcs:
            src_flat.extend(sorted(srcs))
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        self.producers.append(seq)
        self.insts_since_frame += 1
        return seq

    def _align(self, addr: int, size: int) -> int:
        return addr & ~(size - 1)

    # -- instruction emitters ---------------------------------------------------

    def _emit_alu(self, op: int) -> None:
        # The most frequent emitter (~60% of the stream): _skewed_pc and
        # _emit are inlined here, with the exact draw order of the generic
        # path (pc, then sources, then destination register).
        rng = self.rng
        count = self.profile.static_alu_pcs
        idx = int(count * rng.random() ** 2)
        if idx > count - 1:
            idx = count - 1
        pc = _PC_ALU + 64 + idx * 4
        srcs = self._pick_srcs()
        # randrange(1, 26) = 1 + _randbelow(25), rejection loop inlined.
        getrandbits = rng.getrandbits
        dst_reg = getrandbits(5)
        while dst_reg >= 25:
            dst_reg = getrandbits(5)
        dst_reg += 1
        seq = self.n
        self.rows.append((pc, op, dst_reg, 0, 0, 0, NO_PRODUCER, 0, NO_PRODUCER, 0))
        src_flat = self.src_flat
        if srcs:
            src_flat.extend(srcs)
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        self.producers.append(seq)
        self.insts_since_frame += 1

    def _emit_branch(self) -> None:
        profile, rng = self.profile, self.rng
        site = int(profile.static_branches * rng.random() ** 2)
        site = min(site, profile.static_branches - 1)
        taken = rng.random() < self.branch_bias[site]
        srcs = self._pick_srcs(1)
        seq = self.n
        self.rows.append(
            (_PC_BRANCH + site * 4, _OP_BRANCH, -1, 0, 0, 0, NO_PRODUCER,
             1 if taken else 0, NO_PRODUCER, 0)
        )
        src_flat = self.src_flat
        if srcs:
            src_flat.extend(srcs)
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        self.insts_since_frame += 1
        if rng.random() < 0.4:
            addrs = tuple(
                self._align(self._fresh_address()[0], 8)
                for _ in range(1 + self._randbelow(2))
            )
            self.wrong_path[seq] = addrs

    def _emit_store(self) -> None:
        profile, rng = self.profile, self.rng
        addr, size, base_seq, offset, region = self._fresh_address()
        addr = self._align(addr, size)
        # Forwarding sites are uniform: real spill/fill pairs spread across
        # call sites rather than concentrating in one hot store-set.
        n, k = self._fwd_pcs_n, self._fwd_pcs_k
        getrandbits = rng.getrandbits
        site = getrandbits(k)
        while site >= n:
            site = getrandbits(k)
        ambiguous = rng.random() < profile.ambiguous_store_frac and self.recent_loads
        if ambiguous:
            # The address depends on a recent load (a pointer read): it
            # resolves late, opening an ambiguity window.  Cache-resident
            # (hot-global) loads are preferred so the window length stays
            # bounded by the L1 latency rather than by miss chaos.
            if self.recent_cached_loads:
                base_seq = self.recent_cached_loads[-1]
            else:
                base_seq = self.recent_loads[-1].seq
            pc = _PC_AMB_STORE + site * 4
            # Rebinding the base to a loaded pointer moves this store into
            # that pointer's offset namespace: the region-relative offset
            # would let two ambiguous stores off the same load share a
            # (base, offset) signature while targeting different regions.
            # The full target address keeps the signature->address map
            # one-to-one (the invariant trace validation enforces).
            offset = addr
        elif region == "global":
            # Updates of a named global happen at a stable, per-word PC
            # (so the steering predictor and store-sets see stable pairs).
            pc = _PC_GLOBAL_STORE + (offset // 8 % 64) * 4
        else:
            # Forwarding-site stores are sized to forwarding demand: the
            # share of stores whose values loads actually reload.  (The
            # static set of forwarding stores is small and stable.)
            fwd_store_share = min(
                0.9, 0.05 + profile.forward_frac * profile.load_frac / max(0.01, profile.store_frac)
            )
            if rng.random() < fwd_store_share:
                pc = _PC_FWD_STORE + site * 4
                # Spill-style slots rotate with the frame so each dynamic
                # instance writes a fresh location of its own region.  The
                # offset namespace is biased away from plain stack offsets
                # so (base producer, offset) stays a one-to-one address map.
                slot = (self.frame & 63) * profile.forward_pcs * 4 + site * 4 + self._randbelow(4)
                offset = _FWD_OFFSET_BIAS + slot * 8
                addr = FORWARD_BASE + slot * 8
                base_seq = self.sp_producer
            else:
                pc = self._skewed_pc(_PC_STORE, profile.static_store_pcs)
        current = self.memory.read(addr, size)
        if rng.random() < profile.silent_store_frac:
            value = current
        else:
            value = rng.getrandbits(size * 8 - 1) & _WORD64
            if value == current:
                value = (value + 1) & _WORD64
        # Stored values were typically computed a while ago (a value is
        # spilled *because* it has been live for a long time), so the data
        # producer is drawn from a distance, not the latest instruction.
        if self.producers:
            dist = int(-_log(1.0 - rng.random()) / self._inv_dep2) + 1
            data_seq = self.producers[len(self.producers) - min(dist, len(self.producers))]
        else:
            data_seq = NO_PRODUCER
        srcs = tuple(sorted({s for s in (base_seq, data_seq) if s != NO_PRODUCER}))
        # _emit inlined (field order: pc, op, dst_reg, addr, size,
        # store_value, store_data_seq, taken, base_seq, offset).
        seq = self.n
        self.rows.append(
            (pc, _OP_STORE, -1, addr, size, value, data_seq, 0, base_seq, offset)
        )
        src_flat = self.src_flat
        if srcs:
            src_flat.extend(srcs)
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        self.insts_since_frame += 1
        self.memory.write(addr, value, size)
        record = _StoreRecord(
            seq=seq, addr=addr, size=size, base_seq=base_seq,
            offset=offset, site=site, pc=pc,
        )
        self.recent_stores.append(record)
        if _PC_FWD_STORE <= pc < _PC_AMB_STORE:
            self.recent_fwd_stores.append(record)
        if ambiguous and rng.random() < profile.collision_frac:
            # Demand a truly-colliding load shortly after this store.
            self.pending_collision = (addr, size, site, seq + 2 + self._randbelow(11))

    def _emit_load(self) -> None:
        profile, rng = self.profile, self.rng
        seq = self.n

        if self.pending_collision is not None and seq <= self.pending_collision[3]:
            addr, size, site, _ = self.pending_collision
            self.pending_collision = None
            offset = addr & 0xFFFF
            self._emit(
                _PC_COLLIDE_LOAD + site * 4,
                _OP_LOAD,
                self._pick_srcs(1),
                is_producer=True,
                dst_reg=1 + self._randbelow(25),
                addr=addr,
                size=size,
                base_seq=NO_PRODUCER,
                offset=offset,
            )
            self.recent_loads.append(
                _LoadRecord(seq=seq, addr=addr, size=size, base_seq=NO_PRODUCER, offset=offset)
            )
            return
        if self.pending_collision is not None and seq > self.pending_collision[3]:
            self.pending_collision = None

        r = rng.random()
        if r < profile.forward_frac and self.recent_fwd_stores:
            # Read a recently-stored address (forwarding candidate).  Only
            # forwarding-site stores participate: the paper's premise is
            # that "the static set of forwarding stores and loads is small"
            # (it is what lets the FSQ steering predictor work).
            dist = int(-_log(1.0 - rng.random()) / self._inv_fwd) + 1
            # Ring positions approximate instruction distance via the
            # forwarding-store density of the stream.
            density = max(0.005, profile.store_frac * 0.3)
            back = max(1, int(dist * density))
            back = min(back, len(self.recent_fwd_stores))
            record = self.recent_fwd_stores[-back]
            getrandbits = rng.getrandbits
            dst_reg = getrandbits(5)
            while dst_reg >= 25:
                dst_reg = getrandbits(5)
            base_seq = record.base_seq
            self.rows.append(
                (_PC_FWD_LOAD + record.site * 4, _OP_LOAD, dst_reg + 1,
                 record.addr, record.size, 0, NO_PRODUCER, 0, base_seq, record.offset)
            )
            src_flat = self.src_flat
            if base_seq != NO_PRODUCER:
                src_flat.append(base_seq)
            self.src_offsets.append(len(src_flat))
            self.n = seq + 1
            self.producers.append(seq)
            self.insts_since_frame += 1
            self.recent_loads.append(
                _LoadRecord(
                    seq=seq,
                    addr=record.addr,
                    size=record.size,
                    base_seq=record.base_seq,
                    offset=record.offset,
                )
            )
            return

        r -= profile.forward_frac
        if r < profile.redundancy_frac and self.recent_loads:
            # Repeat an earlier load's address computation (RLE reuse).
            dist = int(-_log(1.0 - rng.random()) / self._inv_red) + 1
            back = max(1, int(dist * (profile.load_frac + 0.05)))
            record = self.recent_loads[-min(back, len(self.recent_loads))]
            if rng.random() < profile.false_elim_frac:
                # Unaccounted-for intervening store: a false elimination.
                value = rng.getrandbits(record.size * 8 - 1)
                store_seq = self._emit(
                    _PC_FALSE_ELIM_STORE + (record.offset % 64),
                    _OP_STORE,
                    self._pick_srcs(1),
                    is_producer=False,
                    addr=record.addr,
                    size=record.size,
                    store_value=value,
                    store_data_seq=self.producers[-1] if self.producers else NO_PRODUCER,
                    base_seq=NO_PRODUCER,
                    offset=record.offset,
                )
                self.memory.write(record.addr, value, record.size)
                self.recent_stores.append(
                    _StoreRecord(
                        seq=store_seq,
                        addr=record.addr,
                        size=record.size,
                        base_seq=NO_PRODUCER,
                        offset=record.offset,
                        site=0,
                    )
                )
                seq = self.n
            getrandbits = rng.getrandbits
            dst_reg = getrandbits(5)
            while dst_reg >= 25:
                dst_reg = getrandbits(5)
            base_seq = record.base_seq
            self.rows.append(
                (_PC_REDUNDANT_LOAD + (record.offset % 64) * 4, _OP_LOAD, dst_reg + 1,
                 record.addr, record.size, 0, NO_PRODUCER, 0, base_seq, record.offset)
            )
            src_flat = self.src_flat
            if base_seq != NO_PRODUCER:
                src_flat.append(base_seq)
            self.src_offsets.append(len(src_flat))
            self.n = seq + 1
            self.producers.append(seq)
            self.insts_since_frame += 1
            self.recent_loads.append(
                _LoadRecord(
                    seq=seq,
                    addr=record.addr,
                    size=record.size,
                    base_seq=record.base_seq,
                    offset=record.offset,
                )
            )
            return

        addr, size, base_seq, offset, region = self._fresh_address(for_load=True)
        addr = self._align(addr, size)
        seq = self.n  # _fresh_address may emit producers
        if region == "global":
            # Reads of a named global come from a stable, per-word PC.
            load_pc = _PC_GLOBAL_LOAD + (offset // 8 % 64) * 4
        else:
            load_pc = self._skewed_pc(_PC_LOAD, profile.static_load_pcs)
        # randrange(1, 26) rejection loop and _emit inlined (hot path).
        getrandbits = rng.getrandbits
        dst_reg = getrandbits(5)
        while dst_reg >= 25:
            dst_reg = getrandbits(5)
        self.rows.append(
            (load_pc, _OP_LOAD, dst_reg + 1, addr, size, 0, NO_PRODUCER, 0, base_seq, offset)
        )
        src_flat = self.src_flat
        if base_seq != NO_PRODUCER:
            src_flat.append(base_seq)
        self.src_offsets.append(len(src_flat))
        self.n = seq + 1
        self.producers.append(seq)
        self.insts_since_frame += 1
        self.recent_loads.append(
            _LoadRecord(seq=seq, addr=addr, size=size, base_seq=base_seq, offset=offset)
        )
        if GLOBAL_BASE <= addr < HEAP_BASE:
            self.recent_cached_loads.append(seq)

    # -- main loop -----------------------------------------------------------

    def run(self) -> ColumnTrace:
        profile = self.profile
        imul, falu, ialu = int(OpClass.IMUL), int(OpClass.FALU), _OP_IALU
        self._ensure_region_producers()
        # Dispatch thresholds, accumulated left-to-right exactly as the
        # per-iteration sums the reference generator forms.
        t_load = profile.load_frac
        t_store = t_load + profile.store_frac
        t_branch = t_store + profile.branch_frac
        t_imul = t_branch + profile.imul_frac
        t_mix = profile.mix_total()
        random = self.rng.random
        emit_load, emit_store = self._emit_load, self._emit_store
        emit_branch, emit_alu = self._emit_branch, self._emit_alu
        n_insts = self.n_insts
        while self.n < n_insts:
            r = random()
            if r < t_load:
                emit_load()
            elif r < t_store:
                emit_store()
            elif r < t_branch:
                emit_branch()
            elif r < t_imul:
                emit_alu(imul)
            elif r < t_mix:
                emit_alu(falu)
            else:
                emit_alu(ialu)
        # Truncate to the requested budget (the emitters may overshoot by a
        # few helper producers), transpose the row tuples into columns, and
        # freeze them into typed arrays.
        n = self.n_insts
        src_offsets = self.src_offsets[: n + 1]
        (
            pc, op, dst_reg, addr, size, store_value,
            store_data_seq, taken, base_seq, offset,
        ) = zip(*self.rows[:n])
        trace = ColumnTrace.from_lists(
            profile.name,
            {
                "pc": pc,
                "op": op,
                "dst_reg": dst_reg,
                "addr": addr,
                "size": size,
                "store_value": store_value,
                "store_data_seq": store_data_seq,
                "taken": taken,
                "base_seq": base_seq,
                "offset": offset,
                "src_offsets": src_offsets,
                "src_flat": self.src_flat[: src_offsets[n]],
            },
            initial_memory={},
            wrong_path_addrs={
                seq: addrs for seq, addrs in self.wrong_path.items() if seq < n
            },
        )
        trace.validate()
        return trace


def generate_trace_v1(
    profile: WorkloadProfile, n_insts: int, seed: int | None = None
) -> ColumnTrace:
    """Generate a deterministic **epoch-v1** trace for ``profile``.

    Bit-identical to the frozen object-path reference; kept as the v1
    oracle and for decoding-era comparisons.  New code wants
    :func:`repro.workloads.synthetic.generate_trace` (epoch v2).

    Args:
        profile: The workload description.
        n_insts: Number of dynamic instructions to emit.
        seed: Generator seed; defaults to ``profile.seed``.
    """
    if n_insts <= 0:
        raise ValueError("n_insts must be positive")
    return _Generator(profile, n_insts, profile.seed if seed is None else seed).run()
