"""Frozen object-path reference implementation of the synthetic generator.

This is the pre-column-native :func:`generate_trace` kept verbatim as the
**test oracle** for the column-native generator in
:mod:`repro.workloads.synthetic`: it builds the trace the slow way -- one
:class:`~repro.isa.inst.DynInst` per dynamic instruction -- and the golden
equivalence suite (``tests/workloads/test_column_equivalence.py``) asserts
that both generators produce bit-identical encoded traces for every
shipped profile and seed.  ``svw-repro bench-sweep`` also times this path
to quote the trace-generation speedup.

Do not modify this module except in lock-step with an intentional,
fingerprint-breaking change to :mod:`repro.workloads.synthetic` -- its
entire value is standing still.  Nothing in the hot paths imports it.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass

from repro.isa.inst import NO_PRODUCER, DynInst, Trace
from repro.isa.ops import OpClass
from repro.memsys.memimg import MemoryImage
from repro.workloads.profile import WorkloadProfile

STACK_BASE = 0x1000_0000
GLOBAL_BASE = 0x2000_0000
HEAP_BASE = 0x3000_0000
STREAM_BASE = 0x4000_0000
#: Dedicated slots for the designated forwarding (spill/fill-style) pairs;
#: plain stores never write here, so address-indexed training (SPCT) maps
#: forwarding loads back to forwarding-site stores and nothing else.
FORWARD_BASE = 0x5000_0000

# Static PC ranges by role (disjoint; sized generously).
_PC_ALU = 0x10_0000
_PC_LOAD = 0x20_0000
_PC_STORE = 0x30_0000
_PC_BRANCH = 0x40_0000
_PC_FWD_LOAD = 0x50_0000
_PC_FWD_STORE = 0x60_0000
_PC_AMB_STORE = 0x70_0000
_PC_COLLIDE_LOAD = 0x80_0000
_PC_REDUNDANT_LOAD = 0x90_0000
_PC_GLOBAL_LOAD = 0xA0_0000
_PC_GLOBAL_STORE = 0xB0_0000
_PC_FALSE_ELIM_STORE = 0xC0_0000

_WORD64 = 0xFFFF_FFFF_FFFF_FFFF
#: Offset-namespace bias for forwarding-region accesses (must clear the
#: largest plain stack offset so signatures stay one-to-one with addresses).
_FWD_OFFSET_BIAS = 1 << 24


@dataclass(slots=True)
class _StoreRecord:
    seq: int
    addr: int
    size: int
    base_seq: int
    offset: int
    site: int
    pc: int = 0


@dataclass(slots=True)
class _LoadRecord:
    seq: int
    addr: int
    size: int
    base_seq: int
    offset: int


class _ObjectGenerator:
    def __init__(self, profile: WorkloadProfile, n_insts: int, seed: int) -> None:
        profile.validate()
        self.profile = profile
        self.n_insts = n_insts
        # crc32, not hash(): string hashes are randomized per process
        # (PYTHONHASHSEED), and the trace stream must be identical across
        # processes for result caching and pool workers to be reproducible.
        self.rng = random.Random((seed << 16) ^ zlib.crc32(("svw:" + profile.name).encode()) & 0xFFFF_FFFF)
        self.insts: list[DynInst] = []
        self.memory = MemoryImage()
        self.producers: deque[int] = deque(maxlen=128)
        self.recent_stores: deque[_StoreRecord] = deque(maxlen=96)
        #: Forwarding-site stores only (the designated spill/fill pairs).
        self.recent_fwd_stores: deque[_StoreRecord] = deque(maxlen=48)
        self.recent_loads: deque[_LoadRecord] = deque(maxlen=96)
        #: Loads to the hot-global region (reliably cache-resident); used as
        #: base producers for ambiguous stores so ambiguity windows stay
        #: bounded by the L1 load latency.
        self.recent_cached_loads: deque[int] = deque(maxlen=16)
        self.wrong_path: dict[int, tuple[int, ...]] = {}
        # Region state.
        self.frame = 0
        self.sp_producer = NO_PRODUCER
        self.global_producer = NO_PRODUCER
        self.heap_producers: deque[int] = deque(maxlen=8)
        self.stream_cursor = 0
        self.insts_since_frame = 0
        # Pending true-collision demand: (addr, size, site, expires_at_seq).
        self.pending_collision: tuple[int, int, int, int] | None = None
        # Branch site biases.  Hard-to-predict branches sit at the *cold*
        # end of the (quadratically hot-skewed) site distribution: hot loop
        # back-edges are highly predictable in real programs, data-dependent
        # branches are scattered and cooler.
        n_hard = max(1, int(profile.static_branches * profile.hard_branch_frac))
        self.branch_bias = [
            profile.hard_branch_bias
            if i >= profile.static_branches - n_hard
            else profile.easy_branch_bias
            for i in range(profile.static_branches)
        ]

    # -- helpers --------------------------------------------------------------

    def _geom(self, mean: float) -> int:
        return int(self.rng.expovariate(1.0 / max(1.0, mean))) + 1

    def _pick_srcs(self, max_srcs: int = 2) -> tuple[int, ...]:
        profile, rng = self.profile, self.rng
        if not self.producers or rng.random() < profile.root_frac:
            return ()
        srcs = set()
        for _ in range(rng.randint(1, max_srcs)):
            dist = self._geom(profile.dep_distance)
            idx = len(self.producers) - min(dist, len(self.producers))
            srcs.add(self.producers[idx])
        return tuple(sorted(srcs))

    def _skewed_pc(self, base: int, count: int) -> int:
        """Hot-loop-skewed static PC selection (quadratic bias to low indices)."""
        idx = int(count * self.rng.random() ** 2)
        return base + min(idx, count - 1) * 4

    def _emit(self, inst: DynInst, is_producer: bool) -> None:
        self.insts.append(inst)
        if is_producer:
            self.producers.append(inst.seq)
        self.insts_since_frame += 1

    # -- region address selection ---------------------------------------------

    def _ensure_region_producers(self) -> None:
        """Refresh frame/global/heap pointer producers as needed."""
        profile, rng = self.profile, self.rng
        seq = len(self.insts)
        if self.sp_producer == NO_PRODUCER or self.insts_since_frame > 200:
            # New call frame: an ALU op computes the new frame pointer.
            self._emit(
                DynInst(seq=seq, pc=_PC_ALU, op=OpClass.IALU, src_seqs=(), dst_reg=29),
                is_producer=True,
            )
            self.sp_producer = seq
            self.frame = (self.frame + 1) % 1024
            self.insts_since_frame = 0
        if self.global_producer == NO_PRODUCER:
            seq = len(self.insts)
            self._emit(
                DynInst(seq=seq, pc=_PC_ALU + 4, op=OpClass.IALU, src_seqs=(), dst_reg=28),
                is_producer=True,
            )
            self.global_producer = seq
        if not self.heap_producers or rng.random() < 0.01:
            # A pointer ALU producing a heap base.  Kept dependence-free so
            # that *store* address-resolution delay is controlled solely by
            # ``ambiguous_store_frac`` (load-side address depth comes from
            # ``addr_comp_frac``/``deep_addr_frac`` instead).
            seq = len(self.insts)
            self._emit(
                DynInst(
                    seq=seq,
                    pc=self._skewed_pc(_PC_ALU + 8, max(8, profile.static_alu_pcs // 8)),
                    op=OpClass.IALU,
                    src_seqs=(),
                    dst_reg=27,
                ),
                is_producer=True,
            )
            self.heap_producers.append(seq)

    def _fresh_address(self, for_load: bool = False) -> tuple[int, int, int, int, str]:
        """Pick (addr, size, base_seq, offset, region) for a fresh access.

        Loads frequently receive a freshly-computed base register (see
        ``addr_comp_frac``); store bases are overwhelmingly pre-computed.
        """
        profile, rng = self.profile, self.rng
        self._ensure_region_producers()
        size = 4 if rng.random() < profile.sub_quad_frac else 8
        global_frac = profile.global_frac
        if not for_load:
            # Stores rarely target the hot read-mostly globals; the
            # displaced probability falls through to the heap.
            global_frac *= profile.store_global_scale
        region = "heap"
        r = rng.random()
        if r < profile.stack_frac:
            region = "stack"
            # Fresh (non-forwarding) stack traffic uses disjoint slot
            # ranges for loads and stores: compiler-managed frames do not
            # casually reload what an unrelated store just wrote -- all
            # window-distance stack forwarding goes through the designated
            # spill/fill sites instead (see _emit_load's forwarding path).
            half = max(1, profile.stack_slots // 2)
            slot = rng.randrange(half) + (half if for_load else 0)
            offset = slot * 8
            addr = STACK_BASE + (self.frame * profile.stack_slots * 8 + offset) % (1 << 20)
            base_seq = self.sp_producer
        elif r < profile.stack_frac + global_frac:
            region = "global"
            word = int(profile.global_words * rng.random() ** 2)
            offset = word * 8
            addr, base_seq = GLOBAL_BASE + offset, self.global_producer
        elif r < profile.stack_frac + global_frac + profile.stream_frac:
            region = "stream"
            addr = STREAM_BASE + self.stream_cursor
            self.stream_cursor = (self.stream_cursor + profile.stream_stride) % (1 << 22)
            offset, base_seq = addr - STREAM_BASE, NO_PRODUCER
        else:
            # Heap access via a pointer producer; loads and stores visit
            # disjoint halves of the working set (same rationale as the
            # stack partition above), with the partition carried by the
            # *offset* so that the address is a pure function of the
            # (base producer, offset) pair -- register-integration
            # signatures must imply address equality, as in real renaming.
            base_seq = rng.choice(list(self.heap_producers))
            half_heap = profile.heap_bytes // 2
            if for_load:
                offset = rng.randrange(half_heap, profile.heap_bytes, 8)
            else:
                offset = rng.randrange(0, half_heap, 8)
            addr = HEAP_BASE + offset
        if for_load and rng.random() < profile.addr_comp_frac:
            base_seq = self._emit_addr_computation(base_seq)
        return addr, size, base_seq, offset, region

    def _emit_addr_computation(self, region_base: int) -> int:
        """Emit the ALU op that computes a load's effective base register."""
        profile, rng = self.profile, self.rng
        srcs = {region_base} if region_base != NO_PRODUCER else set()
        if rng.random() < profile.deep_addr_frac:
            srcs.update(self._pick_srcs(1))
        seq = len(self.insts)
        self._emit(
            DynInst(
                seq=seq,
                pc=self._skewed_pc(_PC_ALU + 32, max(16, profile.static_alu_pcs // 4)),
                op=OpClass.IALU,
                src_seqs=tuple(sorted(srcs)),
                dst_reg=26,
            ),
            is_producer=True,
        )
        return seq

    def _align(self, addr: int, size: int) -> int:
        return addr & ~(size - 1)

    # -- instruction emitters ---------------------------------------------------

    def _emit_alu(self, op: OpClass) -> None:
        profile = self.profile
        seq = len(self.insts)
        self._emit(
            DynInst(
                seq=seq,
                pc=self._skewed_pc(_PC_ALU + 64, profile.static_alu_pcs),
                op=op,
                src_seqs=self._pick_srcs(),
                dst_reg=self.rng.randrange(1, 26),
            ),
            is_producer=True,
        )

    def _emit_branch(self) -> None:
        profile, rng = self.profile, self.rng
        site = int(profile.static_branches * rng.random() ** 2)
        site = min(site, profile.static_branches - 1)
        taken = rng.random() < self.branch_bias[site]
        seq = len(self.insts)
        self._emit(
            DynInst(
                seq=seq,
                pc=_PC_BRANCH + site * 4,
                op=OpClass.BRANCH,
                src_seqs=self._pick_srcs(1),
                taken=taken,
            ),
            is_producer=False,
        )
        if rng.random() < 0.4:
            addrs = tuple(
                self._align(self._fresh_address()[0], 8) for _ in range(rng.randint(1, 2))
            )
            self.wrong_path[seq] = addrs

    def _emit_store(self) -> None:
        profile, rng = self.profile, self.rng
        addr, size, base_seq, offset, region = self._fresh_address()
        addr = self._align(addr, size)
        # Forwarding sites are uniform: real spill/fill pairs spread across
        # call sites rather than concentrating in one hot store-set.
        site = rng.randrange(profile.forward_pcs)
        ambiguous = rng.random() < profile.ambiguous_store_frac and self.recent_loads
        if ambiguous:
            # The address depends on a recent load (a pointer read): it
            # resolves late, opening an ambiguity window.  Cache-resident
            # (hot-global) loads are preferred so the window length stays
            # bounded by the L1 latency rather than by miss chaos.
            if self.recent_cached_loads:
                base_seq = self.recent_cached_loads[-1]
            else:
                base_seq = self.recent_loads[-1].seq
            pc = _PC_AMB_STORE + site * 4
            # Rebinding the base to a loaded pointer moves this store into
            # that pointer's offset namespace: the region-relative offset
            # would let two ambiguous stores off the same load share a
            # (base, offset) signature while targeting different regions.
            # The full target address keeps the signature->address map
            # one-to-one (the invariant Trace.validate enforces).
            offset = addr
        elif region == "global":
            # Updates of a named global happen at a stable, per-word PC
            # (so the steering predictor and store-sets see stable pairs).
            pc = _PC_GLOBAL_STORE + (offset // 8 % 64) * 4
        else:
            # Forwarding-site stores are sized to forwarding demand: the
            # share of stores whose values loads actually reload.  (The
            # static set of forwarding stores is small and stable.)
            fwd_store_share = min(
                0.9, 0.05 + profile.forward_frac * profile.load_frac / max(0.01, profile.store_frac)
            )
            if rng.random() < fwd_store_share:
                pc = _PC_FWD_STORE + site * 4
                # Spill-style slots rotate with the frame so each dynamic
                # instance writes a fresh location of its own region.  The
                # offset namespace is biased away from plain stack offsets
                # so (base producer, offset) stays a one-to-one address map.
                slot = (self.frame & 63) * profile.forward_pcs * 4 + site * 4 + rng.randrange(4)
                offset = _FWD_OFFSET_BIAS + slot * 8
                addr = FORWARD_BASE + slot * 8
                base_seq = self.sp_producer
            else:
                pc = self._skewed_pc(_PC_STORE, profile.static_store_pcs)
        current = self.memory.read(addr, size)
        if rng.random() < profile.silent_store_frac:
            value = current
        else:
            value = rng.getrandbits(size * 8 - 1) & _WORD64
            if value == current:
                value = (value + 1) & _WORD64
        # Stored values were typically computed a while ago (a value is
        # spilled *because* it has been live for a long time), so the data
        # producer is drawn from a distance, not the latest instruction.
        if self.producers:
            dist = self._geom(profile.dep_distance * 2)
            data_seq = self.producers[len(self.producers) - min(dist, len(self.producers))]
        else:
            data_seq = NO_PRODUCER
        srcs = tuple(sorted({s for s in (base_seq, data_seq) if s != NO_PRODUCER}))
        seq = len(self.insts)
        self._emit(
            DynInst(
                seq=seq,
                pc=pc,
                op=OpClass.STORE,
                src_seqs=srcs,
                addr=addr,
                size=size,
                store_value=value,
                store_data_seq=data_seq,
                base_seq=base_seq,
                offset=offset,
            ),
            is_producer=False,
        )
        self.memory.write(addr, value, size)
        record = _StoreRecord(
            seq=seq, addr=addr, size=size, base_seq=base_seq,
            offset=offset, site=site, pc=pc,
        )
        self.recent_stores.append(record)
        if _PC_FWD_STORE <= pc < _PC_AMB_STORE:
            self.recent_fwd_stores.append(record)
        if ambiguous and rng.random() < profile.collision_frac:
            # Demand a truly-colliding load shortly after this store.
            self.pending_collision = (addr, size, site, seq + rng.randint(2, 12))

    def _emit_load(self) -> None:
        profile, rng = self.profile, self.rng
        seq = len(self.insts)

        if self.pending_collision is not None and seq <= self.pending_collision[3]:
            addr, size, site, _ = self.pending_collision
            self.pending_collision = None
            inst = DynInst(
                seq=seq,
                pc=_PC_COLLIDE_LOAD + site * 4,
                op=OpClass.LOAD,
                src_seqs=self._pick_srcs(1),
                dst_reg=rng.randrange(1, 26),
                addr=addr,
                size=size,
                base_seq=NO_PRODUCER,
                offset=addr & 0xFFFF,
            )
            self._emit(inst, is_producer=True)
            self.recent_loads.append(
                _LoadRecord(seq=seq, addr=addr, size=size, base_seq=NO_PRODUCER, offset=inst.offset)
            )
            return
        if self.pending_collision is not None and seq > self.pending_collision[3]:
            self.pending_collision = None

        r = rng.random()
        if r < profile.forward_frac and self.recent_fwd_stores:
            # Read a recently-stored address (forwarding candidate).  Only
            # forwarding-site stores participate: the paper's premise is
            # that "the static set of forwarding stores and loads is small"
            # (it is what lets the FSQ steering predictor work).
            dist = self._geom(profile.forward_distance)
            # Ring positions approximate instruction distance via the
            # forwarding-store density of the stream.
            density = max(0.005, profile.store_frac * 0.3)
            back = max(1, int(dist * density))
            back = min(back, len(self.recent_fwd_stores))
            record = self.recent_fwd_stores[-back]
            inst = DynInst(
                seq=seq,
                pc=_PC_FWD_LOAD + record.site * 4,
                op=OpClass.LOAD,
                src_seqs=() if record.base_seq == NO_PRODUCER else (record.base_seq,),
                dst_reg=rng.randrange(1, 26),
                addr=record.addr,
                size=record.size,
                base_seq=record.base_seq,
                offset=record.offset,
            )
            self._emit(inst, is_producer=True)
            self.recent_loads.append(
                _LoadRecord(
                    seq=seq,
                    addr=record.addr,
                    size=record.size,
                    base_seq=record.base_seq,
                    offset=record.offset,
                )
            )
            return

        r -= profile.forward_frac
        if r < profile.redundancy_frac and self.recent_loads:
            # Repeat an earlier load's address computation (RLE reuse).
            dist = self._geom(profile.redundancy_distance)
            back = max(1, int(dist * (profile.load_frac + 0.05)))
            record = self.recent_loads[-min(back, len(self.recent_loads))]
            if rng.random() < profile.false_elim_frac:
                # Unaccounted-for intervening store: a false elimination.
                value = rng.getrandbits(record.size * 8 - 1)
                store_seq = len(self.insts)
                self._emit(
                    DynInst(
                        seq=store_seq,
                        pc=_PC_FALSE_ELIM_STORE + (record.offset % 64),
                        op=OpClass.STORE,
                        src_seqs=self._pick_srcs(1),
                        addr=record.addr,
                        size=record.size,
                        store_value=value,
                        store_data_seq=self.producers[-1] if self.producers else NO_PRODUCER,
                        base_seq=NO_PRODUCER,
                        offset=record.offset,
                    ),
                    is_producer=False,
                )
                self.memory.write(record.addr, value, record.size)
                self.recent_stores.append(
                    _StoreRecord(
                        seq=store_seq,
                        addr=record.addr,
                        size=record.size,
                        base_seq=NO_PRODUCER,
                        offset=record.offset,
                        site=0,
                    )
                )
                seq = len(self.insts)
            inst = DynInst(
                seq=seq,
                pc=_PC_REDUNDANT_LOAD + (record.offset % 64) * 4,
                op=OpClass.LOAD,
                src_seqs=() if record.base_seq == NO_PRODUCER else (record.base_seq,),
                dst_reg=rng.randrange(1, 26),
                addr=record.addr,
                size=record.size,
                base_seq=record.base_seq,
                offset=record.offset,
            )
            self._emit(inst, is_producer=True)
            self.recent_loads.append(
                _LoadRecord(
                    seq=seq,
                    addr=record.addr,
                    size=record.size,
                    base_seq=record.base_seq,
                    offset=record.offset,
                )
            )
            return

        addr, size, base_seq, offset, region = self._fresh_address(for_load=True)
        addr = self._align(addr, size)
        seq = len(self.insts)  # _fresh_address may emit producers
        if region == "global":
            # Reads of a named global come from a stable, per-word PC.
            load_pc = _PC_GLOBAL_LOAD + (offset // 8 % 64) * 4
        else:
            load_pc = self._skewed_pc(_PC_LOAD, profile.static_load_pcs)
        inst = DynInst(
            seq=seq,
            pc=load_pc,
            op=OpClass.LOAD,
            src_seqs=() if base_seq == NO_PRODUCER else (base_seq,),
            dst_reg=rng.randrange(1, 26),
            addr=addr,
            size=size,
            base_seq=base_seq,
            offset=offset,
        )
        self._emit(inst, is_producer=True)
        self.recent_loads.append(
            _LoadRecord(seq=seq, addr=addr, size=size, base_seq=base_seq, offset=offset)
        )
        if GLOBAL_BASE <= addr < HEAP_BASE:
            self.recent_cached_loads.append(seq)

    # -- main loop -----------------------------------------------------------

    def run(self) -> Trace:
        profile, rng = self.profile, self.rng
        self._ensure_region_producers()
        while len(self.insts) < self.n_insts:
            r = rng.random()
            if r < profile.load_frac:
                self._emit_load()
            elif r < profile.load_frac + profile.store_frac:
                self._emit_store()
            elif r < profile.load_frac + profile.store_frac + profile.branch_frac:
                self._emit_branch()
            elif r < profile.load_frac + profile.store_frac + profile.branch_frac + profile.imul_frac:
                self._emit_alu(OpClass.IMUL)
            elif r < profile.mix_total():
                self._emit_alu(OpClass.FALU)
            else:
                self._emit_alu(OpClass.IALU)
        trace = Trace(
            name=profile.name,
            insts=self.insts[: self.n_insts],
            initial_memory={},
            wrong_path_addrs={
                seq: addrs for seq, addrs in self.wrong_path.items() if seq < self.n_insts
            },
        )
        trace.validate()
        return trace


def generate_trace_objects(
    profile: WorkloadProfile, n_insts: int, seed: int | None = None
) -> Trace:
    """Reference (object-path) trace generation; the equivalence oracle.

    Args:
        profile: The workload description.
        n_insts: Number of dynamic instructions to emit.
        seed: Generator seed; defaults to ``profile.seed``.
    """
    if n_insts <= 0:
        raise ValueError("n_insts must be positive")
    return _ObjectGenerator(profile, n_insts, profile.seed if seed is None else seed).run()
