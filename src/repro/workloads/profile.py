"""Workload profile parameters.

A :class:`WorkloadProfile` statistically describes one benchmark run.  The
parameters were chosen to cover exactly the workload properties the paper's
mechanisms respond to:

- instruction mix and dependence density (IPC, issue-port pressure);
- the *address stream* (stack / hot-global / heap / streaming mix, working
  set size) which sets cache behaviour and SSBF aliasing;
- store-load forwarding structure (how many loads read in-flight stores and
  at what distance) which drives the FSQ/SSQ and the SVW ``+UPD`` rule;
- store address-resolution depth (how often loads issue under unresolved
  older stores) which drives NLQ-LS marking and memory-ordering violations;
- load redundancy (reuse/bypass rates) which drives RLE;
- silent stores and sub-quadword accesses, the two sources of unavoidable
  re-executions the paper calls out in section 4.1.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.fingerprint import stable_digest


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Statistical description of one benchmark run.

    All ``*_frac`` values are probabilities in [0, 1].  Fractions for the
    instruction mix (``load_frac + store_frac + branch_frac + imul_frac +
    falu_frac``) must sum to less than 1; the remainder is plain integer ALU
    work.
    """

    name: str

    # -- instruction mix ----------------------------------------------------
    load_frac: float = 0.24
    store_frac: float = 0.12
    branch_frac: float = 0.14
    imul_frac: float = 0.01
    falu_frac: float = 0.01

    # -- dataflow shape -----------------------------------------------------
    #: Mean dependence distance for ALU operands (geometric); smaller means
    #: deeper dependence chains and lower ILP.
    dep_distance: float = 12.0
    #: Fraction of ALU instructions with no in-window register inputs.
    root_frac: float = 0.15

    # -- branch behaviour ---------------------------------------------------
    #: Number of static conditional branch sites.
    static_branches: int = 96
    #: Fraction of branch sites that are hard to predict.
    hard_branch_frac: float = 0.15
    #: Taken-probability entropy of hard branches (0.5 = coin flip).
    hard_branch_bias: float = 0.6
    #: Taken-probability of easy branches.
    easy_branch_bias: float = 0.96

    # -- address stream -----------------------------------------------------
    #: Region mix for fresh (non-forwarding, non-redundant) accesses.
    stack_frac: float = 0.30
    global_frac: float = 0.25
    stream_frac: float = 0.10
    # remainder of fresh accesses hit the heap region.
    #: Heap working set in bytes (sets cache miss rate).
    heap_bytes: int = 1 << 16
    #: Number of hot global words.
    global_words: int = 256
    #: Number of live stack spill slots.
    stack_slots: int = 64
    #: Stream stride in bytes.
    stream_stride: int = 8
    #: Fraction of 4-byte (sub-quadword) accesses.
    sub_quad_frac: float = 0.15
    #: Stores visit the hot-global region at this multiple of the load
    #: share (real hot globals are read-mostly; write-then-reload traffic
    #: at unstable PC pairs is rare in SPECint, which is what makes small
    #: FSQs and steering predictors viable).
    store_global_scale: float = 0.2
    #: Fraction of fresh loads whose address is freshly computed (an ALU op
    #: feeding the base register, e.g. ``a[i++]`` / ``p->next``), delaying
    #: load issue relative to older stores' AGEN.  Store addresses are
    #: mostly pre-computed (spills, ``*p = v``), so stores AGEN promptly.
    addr_comp_frac: float = 0.65
    #: Of those, fraction that additionally chain on recent computation
    #: (deeper address dataflow: index arithmetic, pointer chasing).
    deep_addr_frac: float = 0.35

    # -- store-load forwarding ----------------------------------------------
    #: Fraction of loads that read an address recently written by an
    #: in-flight store (candidates for forwarding / FSQ steering).
    forward_frac: float = 0.12
    #: Mean store->load distance (instructions, geometric) for those pairs.
    forward_distance: float = 24.0
    #: Number of static PCs participating in forwarding (small and stable,
    #: as the paper notes; lets steering predictors train).
    forward_pcs: int = 12

    # -- memory-ordering speculation -----------------------------------------
    #: Fraction of stores whose address depends on a load (resolves late,
    #: creating the ambiguity windows NLQ-LS marks loads under).
    ambiguous_store_frac: float = 0.18
    #: Given an ambiguity window, probability a following nearby load truly
    #: collides with the ambiguous store (a real ordering violation unless
    #: the scheduler predicts it).
    collision_frac: float = 0.04

    # -- redundancy (RLE) ----------------------------------------------------
    #: Fraction of loads that repeat an earlier load's address computation
    #: (register-integration reuse candidates).
    redundancy_frac: float = 0.20
    #: Mean distance to the reused load (instructions, geometric).
    redundancy_distance: float = 40.0
    #: Probability that a reuse pair has an intervening store to the same
    #: address (a *false* elimination that re-execution must catch).
    false_elim_frac: float = 0.03

    # -- store value behaviour -----------------------------------------------
    #: Fraction of stores that rewrite the value already in memory.
    silent_store_frac: float = 0.18

    # -- static footprint -----------------------------------------------------
    static_alu_pcs: int = 512
    static_load_pcs: int = 160
    static_store_pcs: int = 96

    # -- provenance -----------------------------------------------------------
    #: Qualitative notes tying the parameter choices to the paper.
    notes: str = ""
    #: Default generator seed so every run of the suite sees the same trace.
    seed: int = field(default=0)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "WorkloadProfile":
        return cls(**payload)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Stable digest of everything that affects trace generation.

        ``notes`` is prose provenance with no effect on the generated
        stream, so it is excluded; ``name`` and ``seed`` both feed the
        generator's RNG and stay in.
        """
        payload = self.to_dict()
        del payload["notes"]
        return stable_digest(payload)

    def mix_total(self) -> float:
        return (
            self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.imul_frac
            + self.falu_frac
        )

    def validate(self) -> None:
        if not 0.0 < self.mix_total() < 1.0:
            raise ValueError(f"{self.name}: instruction mix must sum to <1")
        for attr in (
            "load_frac",
            "store_frac",
            "branch_frac",
            "stack_frac",
            "global_frac",
            "stream_frac",
            "sub_quad_frac",
            "forward_frac",
            "ambiguous_store_frac",
            "collision_frac",
            "redundancy_frac",
            "false_elim_frac",
            "silent_store_frac",
            "hard_branch_frac",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr}={value} out of [0,1]")
        if self.stack_frac + self.global_frac + self.stream_frac > 1.0:
            raise ValueError(f"{self.name}: region mix exceeds 1")
        if self.heap_bytes < 64 or self.heap_bytes % 8:
            raise ValueError(f"{self.name}: bad heap_bytes {self.heap_bytes}")
