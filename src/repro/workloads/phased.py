"""Phase-structured synthetic workloads: profiles composed over time.

A :class:`WorkloadProfile` is *stationary*: every statistical property of
the stream is constant over the whole trace.  Real programs are not --
their hot sets drift, oscillate between loop nests, and get interrupted
by scan storms (GC sweeps, memcpy bursts) that evict everything.  The
``capsa`` trace-generator taxonomy names these shapes (static / dynamic /
oscillating hot sets, scan interleavings); this module expresses them as
a :class:`PhasedWorkload`: an ordered composition of ordinary profiles,
each generating one *segment* of the final trace through the epoch-v2
block sampler.

Phased traces are ordinary :class:`~repro.isa.coltrace.ColumnTrace`
streams: segments are generated independently (each from its own derived
seed) and concatenated by shifting every producer reference -- register
sources, base-address producers, store-data producers, wrong-path keys --
by the running row offset.  Cross-segment dataflow is deliberately absent
(a phase change behaves like a call into fresh code), which keeps the
``validate()`` invariants compositional: producers stay strictly earlier,
and signature keys ``(base_seq, offset)`` cannot collide across segments
because base producers live in disjoint seq ranges.

Determinism matches the stationary generator: a phased trace is a pure
function of ``(PhasedWorkload, n_insts, seed)``, with per-segment seeds
derived by integer/CRC arithmetic (never ``hash()``), so golden stats
fingerprints pin phased identity exactly like the v2 goldens do.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass

from repro.fingerprint import stable_digest
from repro.isa.coltrace import INST_COLUMNS, ColumnTrace
from repro.isa.inst import NO_PRODUCER
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec2000 import spec_profile
from repro.workloads.synthetic import generate_trace

#: The phase-structure taxonomy (capsa's WorkloadType, adapted):
#: ``static`` -- one stationary hot set (the degenerate single-phase case,
#: kept in the taxonomy so sweeps can report it alongside the others);
#: ``dynamic`` -- the hot set migrates monotonically across phases;
#: ``oscillating`` -- phases alternate cyclically (``repeat`` cycles);
#: ``scan-storm`` -- normal phases interrupted by streaming scan bursts.
PHASE_KINDS = ("static", "dynamic", "oscillating", "scan-storm")


@dataclass(frozen=True, slots=True)
class PhasedWorkload:
    """An ordered, weighted composition of profiles into one trace.

    ``phases`` holds ``(profile, weight)`` pairs; the instruction budget is
    split proportionally to weight over the expanded phase sequence (the
    ``phases`` tuple cycled ``repeat`` times), with every segment getting
    at least one instruction.
    """

    name: str
    kind: str
    phases: tuple[tuple[WorkloadProfile, float], ...]
    seed: int = 0
    #: Number of times the phase sequence cycles (oscillation/storm period).
    repeat: int = 1

    def validate(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(f"{self.name}: unknown phase kind {self.kind!r}")
        if not self.phases:
            raise ValueError(f"{self.name}: needs at least one phase")
        if self.repeat < 1:
            raise ValueError(f"{self.name}: repeat must be >= 1")
        for profile, weight in self.phases:
            if weight <= 0:
                raise ValueError(f"{self.name}: phase weight {weight} must be > 0")
            profile.validate()

    def segments(self) -> list[tuple[WorkloadProfile, float]]:
        """The expanded (cycled) phase sequence the budget is split over."""
        return list(self.phases) * self.repeat

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "kind": self.kind,
            "phases": [
                {"profile": profile.to_dict(), "weight": weight}
                for profile, weight in self.phases
            ],
            "seed": self.seed,
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "PhasedWorkload":
        phases = payload.get("phases")
        if not isinstance(phases, list):
            raise ValueError("phased payload has no phases list")
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            phases=tuple(
                (WorkloadProfile.from_dict(dict(p["profile"])), float(p["weight"]))
                for p in phases
            ),
            seed=int(payload.get("seed", 0)),  # type: ignore[call-overload]
            repeat=int(payload.get("repeat", 1)),  # type: ignore[call-overload]
        )

    def fingerprint(self) -> str:
        """Stable digest of everything that affects the generated stream.

        Per-phase profile *fingerprints* stand in for the profiles (they
        already exclude prose ``notes``), so two phased workloads with the
        same structure over equivalent profiles digest identically.
        """
        return stable_digest(
            {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
                "repeat": self.repeat,
                "phases": [
                    [profile.fingerprint(), weight] for profile, weight in self.phases
                ],
            }
        )


def _segment_seed(seed: int, index: int, profile: WorkloadProfile) -> int:
    """Deterministic per-segment generator seed (CRC mixing, no hash())."""
    tag = f"svw-phase:{index}:{profile.name}".encode()
    return ((seed * 0x9E3779B1) ^ zlib.crc32(tag)) & 0xFFFF_FFFF


def split_budget(weights: list[float], n_insts: int) -> list[int]:
    """Split ``n_insts`` proportionally to ``weights`` (largest-remainder),
    guaranteeing every segment at least one instruction."""
    count = len(weights)
    if n_insts < count:
        raise ValueError(f"n_insts={n_insts} cannot cover {count} phase segments")
    total = sum(weights)
    raw = [n_insts * w / total for w in weights]
    out = [max(1, int(r)) for r in raw]
    # Largest-remainder distribution of whatever the floors left over;
    # deficits (out below the fractional target) are topped up first, and
    # any excess (from the at-least-one floor) is shaved off the most
    # over-allocated segments without ever dropping one below 1.
    leftover = n_insts - sum(out)
    if leftover > 0:
        order = sorted(range(count), key=lambda i: (out[i] - raw[i], i))
        for k in range(leftover):
            out[order[k % count]] += 1
    while leftover < 0:
        order = sorted(range(count), key=lambda i: (raw[i] - out[i], i))
        for i in order:
            if leftover == 0:
                break
            if out[i] > 1:
                out[i] -= 1
                leftover += 1
    return out


def generate_phased_trace(
    phased: PhasedWorkload, n_insts: int, seed: int | None = None
) -> ColumnTrace:
    """Generate a deterministic epoch-v2 trace for a phased workload.

    Each segment runs the stationary v2 generator on its own derived seed;
    columns are concatenated with producer references (``src_flat``,
    ``base_seq``, ``store_data_seq``, wrong-path keys) shifted by the
    running row offset.  The result revalidates the full column invariants.
    """
    phased.validate()
    if n_insts <= 0:
        raise ValueError("n_insts must be positive")
    base_seed = phased.seed if seed is None else seed
    segments = phased.segments()
    budgets = split_budget([weight for _, weight in segments], n_insts)

    columns: dict[str, list[int]] = {name: [] for name, _, _ in INST_COLUMNS}
    src_offsets: list[int] = [0]
    src_flat: list[int] = []
    initial_memory: dict[int, int] = {}
    wrong_path: dict[int, tuple[int, ...]] = {}
    row_base = 0
    for index, ((profile, _), budget) in enumerate(zip(segments, budgets)):
        segment = generate_trace(
            profile, budget, seed=_segment_seed(base_seed, index, profile)
        )
        for name, _, _ in INST_COLUMNS:
            col = getattr(segment, name)
            if name in ("base_seq", "store_data_seq"):
                columns[name].extend(
                    v if v == NO_PRODUCER else v + row_base for v in col
                )
            else:
                columns[name].extend(col)
        flat_base = len(src_flat)
        src_flat.extend(v + row_base for v in segment.src_flat)
        src_offsets.extend(v + flat_base for v in list(segment.src_offsets)[1:])
        initial_memory.update(segment.initial_memory)
        for seq, addrs in segment.wrong_path_addrs.items():
            wrong_path[seq + row_base] = addrs
        row_base += len(segment)
    columns["src_offsets"] = src_offsets
    columns["src_flat"] = src_flat
    trace = ColumnTrace.from_lists(
        phased.name,
        columns,
        initial_memory=initial_memory,
        wrong_path_addrs=wrong_path,
    )
    trace.validate()
    return trace


def _phase(base: str, name: str, **overrides: object) -> WorkloadProfile:
    """A catalog phase: a SPEC2000 profile with targeted overrides."""
    profile = dataclasses.replace(spec_profile(base), name=name, **overrides)
    profile.validate()
    return profile


def _catalog() -> dict[str, PhasedWorkload]:
    """The built-in phase-structured workload classes, one per taxonomy kind.

    All are derived from SPEC2000 profiles so their stationary statistics
    stay in the tuned range; the overrides move only the knobs that define
    the phase structure (hot-set size/placement and the region mix).
    """
    hot_static = PhasedWorkload(
        name="hot-static",
        kind="static",
        phases=(
            (
                _phase(
                    "gcc",
                    "hot-static/p0",
                    global_frac=0.55,
                    stack_frac=0.25,
                    stream_frac=0.05,
                    global_words=64,
                    heap_bytes=1 << 12,
                ),
                1.0,
            ),
        ),
        seed=101,
    )
    # Hot set migrates: small-and-tight -> medium -> large-and-cold.
    hot_dynamic = PhasedWorkload(
        name="hot-dynamic",
        kind="dynamic",
        phases=(
            (
                _phase(
                    "gcc",
                    "hot-dynamic/small",
                    global_frac=0.50,
                    global_words=32,
                    heap_bytes=1 << 12,
                ),
                1.0,
            ),
            (
                _phase(
                    "vortex",
                    "hot-dynamic/medium",
                    global_frac=0.35,
                    global_words=256,
                    heap_bytes=1 << 15,
                ),
                1.0,
            ),
            (
                _phase(
                    "mcf",
                    "hot-dynamic/large",
                    global_frac=0.15,
                    global_words=1024,
                    heap_bytes=1 << 18,
                ),
                1.0,
            ),
        ),
        seed=211,
    )
    # Two loop nests traded cyclically (A B A B A B).
    hot_oscillating = PhasedWorkload(
        name="hot-oscillating",
        kind="oscillating",
        phases=(
            (
                _phase(
                    "twolf",
                    "hot-oscillating/a",
                    global_frac=0.45,
                    global_words=64,
                    heap_bytes=1 << 13,
                ),
                1.0,
            ),
            (
                _phase(
                    "vpr.route",
                    "hot-oscillating/b",
                    global_frac=0.20,
                    stack_frac=0.15,
                    heap_bytes=1 << 16,
                ),
                1.0,
            ),
        ),
        seed=307,
        repeat=3,
    )
    # Ordinary phases interrupted by streaming scan bursts that sweep a
    # large footprint (GC/memcpy-style storms; short but destructive).
    scan_storm = PhasedWorkload(
        name="scan-storm",
        kind="scan-storm",
        phases=(
            (_phase("gcc", "scan-storm/steady"), 3.0),
            (
                _phase(
                    "bzip2",
                    "scan-storm/burst",
                    stream_frac=0.70,
                    stack_frac=0.10,
                    global_frac=0.10,
                    heap_bytes=1 << 18,
                    stream_stride=8,
                ),
                1.0,
            ),
        ),
        seed=401,
        repeat=2,
    )
    return {
        workload.name: workload
        for workload in (hot_static, hot_dynamic, hot_oscillating, scan_storm)
    }


#: Built-in phase-structured workloads by name (one per taxonomy kind).
PHASED_CATALOG: dict[str, PhasedWorkload] = _catalog()
