"""The unified workload registry: one spec union, one resolver, one key.

Every subsystem that consumes workloads -- :class:`ExperimentSpec`
builders, the :class:`~repro.experiments.traces.TraceProvider`, the CLI's
``--workloads`` flags, the differential fuzzer -- resolves what it was
given through :func:`resolve_workload` into a single
:class:`WorkloadSpec` union covering every registered workload form:

========== =================================================================
profile     a stationary :class:`~repro.workloads.profile.WorkloadProfile`
            (SPEC2000 look-alikes; the original and still-default form)
phased      a :class:`~repro.workloads.phased.PhasedWorkload` composing
            profiles into static/dynamic/oscillating/scan-storm phases
mutated     a profile or phased base plus a
            :class:`~repro.workloads.mutate.TraceMutation` (the fuzzer's
            form: fully content-addressed, regenerable on any worker)
ingested    an external trace file checked into an
            :class:`~repro.workloads.ingest.IngestStore` (validated data,
            carried by content digest)
fixed       an in-memory trace object (kernels, hand-built streams)
========== =================================================================

The first three are *persistable*: pure functions of their spec, safe to
regenerate anywhere and to cache on disk under :func:`workload_key`.
Ingested and fixed traces carry their instruction stream (or its store
digest) and never ship over the campaign wire.

Content addressing is stable by construction: a plain profile workload
keys and fingerprints exactly as it did before this module existed, so
every cached trace, cached result, and committed BENCH fingerprint keyed
by the old scheme stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.fingerprint import stable_digest
from repro.isa.coltrace import ColumnTrace
from repro.isa.inst import Trace
from repro.workloads.mutate import TraceMutation, apply_mutation
from repro.workloads.phased import PHASED_CATALOG, PhasedWorkload, generate_phased_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES, SPEC_SHORT_NAMES, spec_profile
from repro.workloads.synthetic import generate_trace as _generate_profile_trace
from repro.workloads.trace_cache import trace_key

if TYPE_CHECKING:
    from repro.workloads.ingest import IngestStore


def _trace_digest(trace: Trace | ColumnTrace) -> str:
    """Content digest of a fixed trace's dynamic instruction stream."""
    insts = [
        (
            inst.seq,
            inst.pc,
            int(inst.op),
            inst.src_seqs,
            inst.dst_reg,
            inst.addr,
            inst.size,
            inst.store_value,
            inst.store_data_seq,
            inst.taken,
            inst.base_seq,
            inst.offset,
        )
        for inst in trace.insts
    ]
    return stable_digest(
        {
            "name": trace.name,
            "insts": insts,
            "initial_memory": sorted(trace.initial_memory.items()),
            "wrong_path": sorted(trace.wrong_path_addrs.items()),
        }
    )


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One workload of a sweep: the registry's union type.

    Exactly one *base* is set -- ``profile``, ``phased``, or ``trace``.
    ``mutation`` layers a deterministic trace mutation over a regenerable
    base (profile or phased); ``source`` records the ingest-store digest a
    fixed trace was loaded from (provenance, and its stable key).

    Regenerable workloads rebuild their trace deterministically from the
    spec wherever they run, which is what makes cells picklable and
    cacheable without shipping instruction streams around.  Fixed-trace
    workloads carry the trace itself; its content digest -- not the
    unpicklable/unstable object identity -- stands in for it in hashing,
    equality, and fingerprints.
    """

    name: str
    profile: WorkloadProfile | None = None
    trace: Trace | ColumnTrace | None = field(default=None, compare=False)
    trace_digest: str | None = None
    phased: PhasedWorkload | None = None
    mutation: TraceMutation | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        bases = sum(
            x is not None for x in (self.profile, self.phased, self.trace)
        )
        if bases != 1:
            raise ValueError(
                f"workload {self.name!r} needs exactly one of profile, "
                f"phased, or trace"
            )
        if self.mutation is not None:
            if self.trace is not None:
                raise ValueError(
                    f"workload {self.name!r}: mutations apply to regenerable "
                    "bases (profile or phased), not fixed traces"
                )
            self.mutation.validate()
        if self.source is not None and self.trace is None:
            raise ValueError(
                f"workload {self.name!r}: source records the ingest digest "
                "of a fixed trace"
            )
        if self.trace is not None and self.trace_digest is None:
            object.__setattr__(self, "trace_digest", _trace_digest(self.trace))

    @classmethod
    def from_name(cls, name: str) -> "WorkloadSpec":
        """A SPEC2000 workload by full or short benchmark name."""
        profile = spec_profile(name)
        return cls(name=profile.name, profile=profile)

    @classmethod
    def from_profile(cls, profile: WorkloadProfile) -> "WorkloadSpec":
        return cls(name=profile.name, profile=profile)

    @classmethod
    def from_phased(cls, phased: PhasedWorkload) -> "WorkloadSpec":
        phased.validate()
        return cls(name=phased.name, phased=phased)

    @classmethod
    def from_trace(cls, name: str, trace: Trace | ColumnTrace) -> "WorkloadSpec":
        return cls(name=name, trace=trace)

    def mutated(self, mutation: TraceMutation) -> "WorkloadSpec":
        """This workload with ``mutation`` layered on (fuzzer cells)."""
        return WorkloadSpec(
            name=f"{self.name}+mut{mutation.fingerprint()[:8]}",
            profile=self.profile,
            phased=self.phased,
            mutation=mutation,
        )

    @property
    def persistable(self) -> bool:
        """Whether the workload is a pure function of its spec -- safe to
        regenerate anywhere and to persist in content-addressed caches."""
        return self.trace is None

    @property
    def taxonomy(self) -> str:
        """The registry-taxonomy class of this workload (provenance key
        recorded in BENCH payloads): ``profile``, ``phased``, ``ingested``
        or ``fixed``, with ``+mut`` appended for mutated forms."""
        if self.profile is not None:
            base = "profile"
        elif self.phased is not None:
            base = "phased"
        elif self.source is not None:
            base = "ingested"
        else:
            base = "fixed"
        return f"{base}+mut" if self.mutation is not None else base

    def fingerprint(self) -> str:
        """Stable digest of the workload's dynamic instruction stream."""
        if self.mutation is not None:
            return stable_digest(
                {"base": self._base_fingerprint(), "mutation": self.mutation.to_dict()}
            )
        return self._base_fingerprint()

    def _base_fingerprint(self) -> str:
        if self.profile is not None:
            return self.profile.fingerprint()
        if self.phased is not None:
            return self.phased.fingerprint()
        assert self.trace_digest is not None
        return self.trace_digest

    def to_payload(self) -> dict[str, object]:
        """JSON-safe wire form (campaign submissions); regenerable only.

        Fixed and ingested workloads would need their instruction stream
        shipped alongside the JSON; until a campaign trace-upload path
        exists they are rejected loudly rather than silently dropped.
        Plain profile workloads keep the exact historical payload shape
        (campaign fingerprints are derived from it).
        """
        if self.trace is not None:
            raise ValueError(
                f"workload {self.name!r} is a fixed trace; campaign "
                "submissions carry regenerable workloads only"
            )
        payload: dict[str, object] = {"name": self.name}
        if self.profile is not None:
            payload["profile"] = self.profile.to_dict()
        else:
            assert self.phased is not None
            payload["phased"] = self.phased.to_dict()
        if self.mutation is not None:
            payload["mutation"] = self.mutation.to_dict()
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "WorkloadSpec":
        profile = payload.get("profile")
        phased = payload.get("phased")
        if not isinstance(profile, dict) and not isinstance(phased, dict):
            raise ValueError("workload payload has no profile or phased object")
        mutation = payload.get("mutation")
        return cls(
            name=str(payload["name"]),
            profile=WorkloadProfile.from_dict(profile)
            if isinstance(profile, dict)
            else None,
            phased=PhasedWorkload.from_dict(phased)
            if isinstance(phased, dict)
            else None,
            mutation=TraceMutation.from_dict(dict(mutation))
            if isinstance(mutation, dict)
            else None,
        )

    def materialize(
        self, n_insts: int, seed: int | None = None
    ) -> Trace | ColumnTrace:
        """The trace to simulate (column-native for generated workloads,
        as-is for fixed traces).  ``seed`` overrides the base's own seed
        for regenerable workloads; it must be ``None`` for fixed traces."""
        if self.trace is not None:
            if seed is not None:
                raise ValueError(f"workload {self.name!r} is a fixed trace")
            return self.trace
        if self.profile is not None:
            base = _generate_profile_trace(self.profile, n_insts, seed=seed)
        else:
            assert self.phased is not None
            base = generate_phased_trace(self.phased, n_insts, seed=seed)
        if self.mutation is not None:
            return apply_mutation(base, self.mutation)
        return base


def workload_key(workload: WorkloadSpec, n_insts: int) -> str:
    """Content identity of a workload's materialized trace within a sweep.

    Plain profile workloads keep the historical
    ``{fingerprint}-s{seed}-n{n}`` key (on-disk trace caches roll over for
    free); every other form derives an equally self-describing key from
    its spec fingerprint.
    """
    if workload.mutation is not None:
        return f"{workload.fingerprint()}-n{n_insts}"
    if workload.profile is not None:
        return trace_key(workload.profile, n_insts)
    if workload.phased is not None:
        return f"{workload.fingerprint()}-s{workload.phased.seed}-n{n_insts}"
    if workload.source is not None:
        return f"{workload.source}-src"
    return f"{workload.fingerprint()}-fixed"


def resolve_workload(
    ref: "str | WorkloadSpec | WorkloadProfile | PhasedWorkload",
    *,
    store: "IngestStore | None" = None,
) -> WorkloadSpec:
    """The registry's single entrypoint: anything workload-shaped in,
    one :class:`WorkloadSpec` out.

    String references resolve in order: ``ingest:<digest-prefix>``
    (requires ``store``), a path to an encoded ``.svwt`` trace file
    (validated and loaded as a fixed trace), a
    :data:`~repro.workloads.phased.PHASED_CATALOG` name, then a SPEC2000
    benchmark name (full or short).  Resolution is a pure function of the
    reference (plus store/file contents), so any process resolving the
    same reference gets a spec with the same fingerprint and key.
    """
    if isinstance(ref, WorkloadSpec):
        return ref
    if isinstance(ref, WorkloadProfile):
        return WorkloadSpec.from_profile(ref)
    if isinstance(ref, PhasedWorkload):
        return WorkloadSpec.from_phased(ref)
    if not isinstance(ref, str):
        raise TypeError(f"cannot resolve workload reference {ref!r}")
    if ref.startswith("ingest:"):
        if store is None:
            raise ValueError(f"{ref!r} needs an ingest store to resolve")
        record = store.find(ref[len("ingest:") :])
        return WorkloadSpec(
            name=record.name,
            trace=store.load(record.digest),
            source=record.digest,
        )
    if ref.endswith(".svwt") or "/" in ref:
        from repro.workloads.ingest import load_trace_file

        digest, trace = load_trace_file(Path(ref))
        return WorkloadSpec(name=trace.name, trace=trace, source=digest)
    if ref in PHASED_CATALOG:
        return WorkloadSpec.from_phased(PHASED_CATALOG[ref])
    if ref in SPEC2000_PROFILES or ref in set(SPEC_SHORT_NAMES.values()):
        return WorkloadSpec.from_name(ref)
    known = sorted(SPEC2000_PROFILES) + sorted(PHASED_CATALOG)
    raise ValueError(
        f"unknown workload {ref!r}; known names: {', '.join(known)} "
        "(or ingest:<digest> / a path to an encoded .svwt trace)"
    )


def workload_taxonomy(
    refs, *, store: "IngestStore | None" = None
) -> dict[str, str]:
    """Map each workload reference to its registry-taxonomy class.

    Provenance helper for benchmark payloads: records *what kind* of
    workload each name resolved to (so a snapshot taken against a phased
    or ingested workload is never mistaken for a plain-profile run)
    without touching any trace content.
    """
    out: dict[str, str] = {}
    for ref in refs:
        spec = resolve_workload(ref, store=store)
        out[spec.name] = spec.taxonomy
    return out


def generate_trace(
    workload: "str | WorkloadSpec | WorkloadProfile | PhasedWorkload",
    n_insts: int,
    seed: int | None = None,
) -> Trace | ColumnTrace:
    """Normalized trace generation over the whole registry union.

    Accepts anything :func:`resolve_workload` does.  Passing a plain
    :class:`WorkloadProfile` positionally is the historical signature and
    behaves identically (the profile's own seed applies when ``seed`` is
    None), so existing call sites and the v2 goldens are untouched.
    """
    return resolve_workload(workload).materialize(n_insts, seed=seed)
