"""SPEC2000 integer benchmark profiles.

Each profile is a statistical stand-in for one of the 16 benchmark runs the
paper evaluates (section 4: SPEC2000int, train inputs, Digital OSF C -O3).
Parameters are calibrated *qualitatively* against per-benchmark behaviour the
paper reports:

- twolf has the highest NLQ-LS natural re-execution rate (~20%): pointer
  writes make many store addresses resolve late.
- perl.diffmail retains the highest re-execution rate after SVW (2.6% with
  the forwarding update): its loads genuinely collide with nearby stores.
- vortex has high IPC, the highest RLE elimination rate (42%), and needs
  more ordered-forwarding capacity than a 16-entry FSQ provides: many
  concurrent static forwarding pairs at long distances.
- eon.cook has the highest SSQ+SVW re-execution rate (33%): loads frequently
  read recently-written stack locations.
- mcf is memory bound (huge working set, pointer chasing, low ILP).
- bzip2/gzip stream; crafty is global-table heavy with high redundancy
  (peak RLE speedup); gcc has a large static footprint and branch pressure.

Absolute SPEC behaviour is not claimed -- see DESIGN.md for the substitution
argument.
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.profile import WorkloadProfile

_BASE = WorkloadProfile(name="base")


def _profile(name: str, notes: str, **overrides: object) -> WorkloadProfile:
    return replace(_BASE, name=name, notes=notes, **overrides)  # type: ignore[arg-type]


SPEC2000_PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        _profile(
            "bzip2",
            "Block-sorting compressor: streaming + hot globals, high IPC, "
            "few ambiguous stores, modest forwarding.",
            load_frac=0.26,
            store_frac=0.09,
            branch_frac=0.12,
            stream_frac=0.35,
            stack_frac=0.15,
            global_frac=0.25,
            heap_bytes=1 << 18,
            dep_distance=20.0,
            root_frac=0.25,
            ambiguous_store_frac=0.02,
            collision_frac=0.02,
            forward_frac=0.07,
            redundancy_frac=0.088,
            hard_branch_frac=0.08,
            seed=101,
        ),
        _profile(
            "crafty",
            "Chess: hot global bitboard tables, deep ILP, heavy load "
            "redundancy (peak RLE speedup in the paper).",
            load_frac=0.28,
            store_frac=0.08,
            branch_frac=0.13,
            global_frac=0.45,
            stack_frac=0.20,
            stream_frac=0.02,
            global_words=512,
            heap_bytes=1 << 15,
            dep_distance=18.0,
            root_frac=0.22,
            redundancy_frac=0.165,
            redundancy_distance=28.0,
            forward_frac=0.09,
            ambiguous_store_frac=0.0193,
            collision_frac=0.03,
            imul_frac=0.02,
            seed=102,
        ),
        _profile(
            "eon.cook",
            "Raytracer (cook input): stack-heavy C++ with frequent reads of "
            "recently-written locals -- highest SSQ+SVW re-execution rate.",
            load_frac=0.27,
            store_frac=0.16,
            branch_frac=0.10,
            stack_frac=0.55,
            global_frac=0.12,
            stream_frac=0.02,
            heap_bytes=1 << 14,
            falu_frac=0.06,
            dep_distance=22.0,
            root_frac=0.25,
            forward_frac=0.22,
            forward_distance=14.0,
            redundancy_frac=0.099,
            ambiguous_store_frac=0.0007,
            collision_frac=0.02,
            hard_branch_frac=0.06,
            seed=103,
        ),
        _profile(
            "eon.kajiya",
            "Raytracer (kajiya input): like eon.cook with slightly more "
            "computation per memory op.",
            load_frac=0.26,
            store_frac=0.15,
            branch_frac=0.10,
            stack_frac=0.52,
            global_frac=0.14,
            stream_frac=0.02,
            heap_bytes=1 << 14,
            falu_frac=0.07,
            dep_distance=22.0,
            root_frac=0.26,
            forward_frac=0.20,
            forward_distance=15.0,
            redundancy_frac=0.094,
            ambiguous_store_frac=0.02,
            collision_frac=0.02,
            hard_branch_frac=0.06,
            seed=104,
        ),
        _profile(
            "eon.rushmeier",
            "Raytracer (rushmeier input): least memory-intensive eon run.",
            load_frac=0.25,
            store_frac=0.14,
            branch_frac=0.10,
            stack_frac=0.50,
            global_frac=0.15,
            stream_frac=0.02,
            heap_bytes=1 << 14,
            falu_frac=0.07,
            dep_distance=23.0,
            root_frac=0.27,
            forward_frac=0.18,
            forward_distance=16.0,
            redundancy_frac=0.088,
            ambiguous_store_frac=0.0023,
            collision_frac=0.02,
            hard_branch_frac=0.06,
            seed=105,
        ),
        _profile(
            "gap",
            "Group theory interpreter: large heap working set, moderate "
            "forwarding through interpreter stack.",
            load_frac=0.27,
            store_frac=0.13,
            branch_frac=0.13,
            stack_frac=0.28,
            global_frac=0.20,
            stream_frac=0.05,
            heap_bytes=1 << 19,
            dep_distance=14.0,
            forward_frac=0.12,
            redundancy_frac=0.099,
            ambiguous_store_frac=0.0071,
            collision_frac=0.03,
            hard_branch_frac=0.12,
            seed=106,
        ),
        _profile(
            "gcc",
            "Compiler: huge static footprint, branchy, moderate ambiguity "
            "from tree/rtl pointer stores.",
            load_frac=0.25,
            store_frac=0.14,
            branch_frac=0.17,
            stack_frac=0.30,
            global_frac=0.22,
            stream_frac=0.03,
            heap_bytes=1 << 18,
            static_alu_pcs=2048,
            static_load_pcs=640,
            static_store_pcs=384,
            static_branches=384,
            dep_distance=12.0,
            forward_frac=0.13,
            redundancy_frac=0.11,
            ambiguous_store_frac=0.0966,
            collision_frac=0.04,
            hard_branch_frac=0.18,
            hard_branch_bias=0.62,
            seed=107,
        ),
        _profile(
            "gzip",
            "LZ77 compressor: streaming window accesses, small hot loop, "
            "lowest branch footprint.  (Paper: only program with a slight "
            "slowdown under NLQ-LS+SVW, -0.2%.)",
            load_frac=0.24,
            store_frac=0.10,
            branch_frac=0.13,
            stream_frac=0.40,
            stack_frac=0.12,
            global_frac=0.22,
            heap_bytes=1 << 17,
            static_alu_pcs=192,
            static_load_pcs=64,
            static_branches=48,
            dep_distance=16.0,
            forward_frac=0.06,
            redundancy_frac=0.077,
            ambiguous_store_frac=0.0365,
            collision_frac=0.02,
            hard_branch_frac=0.10,
            seed=108,
        ),
        _profile(
            "mcf",
            "Network simplex: pointer chasing over a huge working set; "
            "memory bound with low ILP.",
            load_frac=0.30,
            store_frac=0.09,
            branch_frac=0.15,
            stack_frac=0.08,
            global_frac=0.07,
            stream_frac=0.02,
            heap_bytes=1 << 21,
            dep_distance=6.0,
            root_frac=0.08,
            forward_frac=0.05,
            redundancy_frac=0.066,
            redundancy_distance=60.0,
            ambiguous_store_frac=0.0657,
            collision_frac=0.03,
            hard_branch_frac=0.20,
            hard_branch_bias=0.65,
            seed=109,
        ),
        _profile(
            "parser",
            "Link grammar parser: recursive with stack traffic and real "
            "collisions (paper: 3.5% slowdown from 8.5% natural NLQ rate).",
            load_frac=0.26,
            store_frac=0.13,
            branch_frac=0.15,
            stack_frac=0.38,
            global_frac=0.18,
            stream_frac=0.02,
            heap_bytes=1 << 17,
            dep_distance=11.0,
            forward_frac=0.14,
            forward_distance=18.0,
            redundancy_frac=0.094,
            ambiguous_store_frac=0.007,
            collision_frac=0.05,
            hard_branch_frac=0.16,
            seed=110,
        ),
        _profile(
            "perl.diffmail",
            "Perl interpreter (diffmail): hash/string ops; loads collide "
            "with genuinely-recent stores, so SVW filters least here "
            "(paper: 2.6% residual re-execution, the maximum).",
            load_frac=0.27,
            store_frac=0.15,
            branch_frac=0.15,
            stack_frac=0.34,
            global_frac=0.20,
            stream_frac=0.03,
            heap_bytes=1 << 17,
            dep_distance=11.0,
            forward_frac=0.17,
            forward_distance=10.0,
            redundancy_frac=0.088,
            ambiguous_store_frac=0.0125,
            collision_frac=0.07,
            hard_branch_frac=0.15,
            seed=111,
        ),
        _profile(
            "perl.splitmail",
            "Perl interpreter (splitmail): like diffmail, slightly less "
            "collision-prone.",
            load_frac=0.27,
            store_frac=0.14,
            branch_frac=0.15,
            stack_frac=0.33,
            global_frac=0.20,
            stream_frac=0.03,
            heap_bytes=1 << 17,
            dep_distance=11.5,
            forward_frac=0.15,
            forward_distance=12.0,
            redundancy_frac=0.088,
            ambiguous_store_frac=0.0014,
            collision_frac=0.05,
            hard_branch_frac=0.14,
            seed=112,
        ),
        _profile(
            "twolf",
            "Place-and-route: pointer-dependent stores dominate, producing "
            "the paper's highest NLQ-LS marking rate (~20%).",
            load_frac=0.27,
            store_frac=0.12,
            branch_frac=0.14,
            stack_frac=0.20,
            global_frac=0.25,
            stream_frac=0.02,
            heap_bytes=1 << 16,
            dep_distance=10.0,
            forward_frac=0.10,
            redundancy_frac=0.088,
            ambiguous_store_frac=0.0221,
            collision_frac=0.04,
            hard_branch_frac=0.16,
            seed=113,
        ),
        _profile(
            "vortex",
            "OO database: highest IPC + heaviest forwarding at long "
            "distances (needs >16 FSQ entries per the paper) and the top "
            "RLE elimination rate (42%).",
            load_frac=0.29,
            store_frac=0.17,
            branch_frac=0.11,
            stack_frac=0.42,
            global_frac=0.18,
            stream_frac=0.02,
            heap_bytes=1 << 16,
            dep_distance=26.0,
            root_frac=0.30,
            forward_frac=0.26,
            forward_distance=40.0,
            forward_pcs=48,
            redundancy_frac=0.176,
            redundancy_distance=30.0,
            ambiguous_store_frac=0.02,
            collision_frac=0.02,
            hard_branch_frac=0.05,
            silent_store_frac=0.30,
            seed=114,
        ),
        _profile(
            "vpr.place",
            "FPGA placement: annealing moves with high redundancy "
            "(paper: 9.2% peak RLE speedup alongside crafty).",
            load_frac=0.27,
            store_frac=0.11,
            branch_frac=0.14,
            stack_frac=0.22,
            global_frac=0.28,
            stream_frac=0.02,
            heap_bytes=1 << 16,
            dep_distance=13.0,
            forward_frac=0.10,
            redundancy_frac=0.154,
            redundancy_distance=24.0,
            ambiguous_store_frac=0.0167,
            collision_frac=0.04,
            hard_branch_frac=0.14,
            seed=115,
        ),
        _profile(
            "vpr.route",
            "FPGA routing: larger working set than placement; the paper's "
            "SSBF-sensitivity outlier (most affected by SSBF aliasing).",
            load_frac=0.28,
            store_frac=0.11,
            branch_frac=0.14,
            stack_frac=0.15,
            global_frac=0.15,
            stream_frac=0.04,
            heap_bytes=1 << 19,
            dep_distance=12.0,
            forward_frac=0.09,
            redundancy_frac=0.099,
            ambiguous_store_frac=0.02,
            collision_frac=0.04,
            hard_branch_frac=0.14,
            sub_quad_frac=0.30,
            seed=116,
        ),
    ]
}

#: Order used in the paper's figures.
SPEC_ORDER = [
    "bzip2",
    "crafty",
    "eon.cook",
    "eon.kajiya",
    "eon.rushmeier",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perl.diffmail",
    "perl.splitmail",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
]

#: Short names as they appear on the paper's x-axes.
SPEC_SHORT_NAMES = {
    "bzip2": "bzip2",
    "crafty": "crafty",
    "eon.cook": "eon.c",
    "eon.kajiya": "eon.k",
    "eon.rushmeier": "eon.r",
    "gap": "gap",
    "gcc": "gcc",
    "gzip": "gzip",
    "mcf": "mcf",
    "parser": "parser",
    "perl.diffmail": "perl.d",
    "perl.splitmail": "perl.s",
    "twolf": "twolf",
    "vortex": "vortex",
    "vpr.place": "vpr.p",
    "vpr.route": "vpr.r",
}


def spec_profile(name: str) -> WorkloadProfile:
    """Look up a SPEC2000 profile by full or short name."""
    if name in SPEC2000_PROFILES:
        return SPEC2000_PROFILES[name]
    for full, short in SPEC_SHORT_NAMES.items():
        if short == name:
            return SPEC2000_PROFILES[full]
    raise KeyError(f"unknown SPEC2000 profile {name!r}")
