"""Workload substrate: synthetic SPEC2000int-like traces and real kernels.

The paper evaluates on the SPEC2000 integer suite compiled for Alpha.  That
toolchain is unavailable here, so this package provides the substitution
described in DESIGN.md:

- :mod:`repro.workloads.profile` / :mod:`repro.workloads.spec2000` --
  parameterised statistical models of the 16 benchmark runs the paper uses
  (bzip2 .. vpr.route), tuned to reproduce the memory-reference structure
  the studied mechanisms are sensitive to.
- :mod:`repro.workloads.synthetic` -- the generator that turns a profile
  into a deterministic dynamic trace.
- :mod:`repro.workloads.kernels` -- real algorithmic kernels written for the
  toy ISA, used by examples and end-to-end correctness tests.
"""

from repro.workloads.kernels import KERNELS, kernel_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES, spec_profile
from repro.workloads.synthetic import generate_trace

__all__ = [
    "KERNELS",
    "SPEC2000_PROFILES",
    "WorkloadProfile",
    "generate_trace",
    "kernel_trace",
    "spec_profile",
]
