"""Workload substrate: synthetic SPEC2000int-like traces and real kernels.

The paper evaluates on the SPEC2000 integer suite compiled for Alpha.  That
toolchain is unavailable here, so this package provides the substitution
described in DESIGN.md:

- :mod:`repro.workloads.profile` / :mod:`repro.workloads.spec2000` --
  parameterised statistical models of the 16 benchmark runs the paper uses
  (bzip2 .. vpr.route), tuned to reproduce the memory-reference structure
  the studied mechanisms are sensitive to.
- :mod:`repro.workloads.synthetic` -- the generator that turns a profile
  into a deterministic dynamic trace.
- :mod:`repro.workloads.phased` -- phase-structured workloads composing
  profiles into static/dynamic/oscillating hot sets and scan storms.
- :mod:`repro.workloads.registry` -- the unified :class:`WorkloadSpec`
  union with :func:`resolve_workload` / :func:`workload_key` content
  addressing; ``generate_trace`` re-exported here is the registry's
  normalized form (a plain profile passed positionally behaves exactly
  as the historical signature did).
- :mod:`repro.workloads.mutate` -- deterministic trace mutations for the
  differential fuzzer.
- :mod:`repro.workloads.ingest` -- validated, content-addressed ingestion
  of external trace files.
- :mod:`repro.workloads.kernels` -- real algorithmic kernels written for the
  toy ISA, used by examples and end-to-end correctness tests.
"""

from repro.workloads.ingest import IngestStore
from repro.workloads.kernels import KERNELS, kernel_trace
from repro.workloads.mutate import MutationOp, TraceMutation, apply_mutation
from repro.workloads.phased import (
    PHASED_CATALOG,
    PhasedWorkload,
    generate_phased_trace,
)
from repro.workloads.profile import WorkloadProfile
from repro.workloads.registry import (
    WorkloadSpec,
    generate_trace,
    resolve_workload,
    workload_key,
)
from repro.workloads.spec2000 import SPEC2000_PROFILES, spec_profile

__all__ = [
    "KERNELS",
    "MutationOp",
    "PHASED_CATALOG",
    "PhasedWorkload",
    "IngestStore",
    "SPEC2000_PROFILES",
    "TraceMutation",
    "WorkloadProfile",
    "WorkloadSpec",
    "apply_mutation",
    "generate_phased_trace",
    "generate_trace",
    "kernel_trace",
    "resolve_workload",
    "spec_profile",
    "workload_key",
]
