"""Content-addressed on-disk cache of encoded traces.

Trace generation is the single most expensive non-simulation step of a
sweep (~as costly as simulating the trace once), and its output depends
only on ``(profile, n_insts)``.  This cache stores the
:mod:`repro.isa.codec` encoding of each generated trace under a key
derived from the profile fingerprint, the generator seed, and the
instruction budget, so repeated sweeps -- and every backend of one sweep
-- skip generation entirely and pay only the (much cheaper) decode.

The cache stores *encoded bytes*, not traces: callers that ship traces to
workers (shared memory, mmap) can forward the bytes without re-encoding,
and a cache hit never pays object construction it does not need.

Corruption safety mirrors :class:`~repro.experiments.store.ResultStore`:
writes are atomic (tmp file + rename), and entries whose checksum or
layout fails to decode are treated as misses by callers (the codec
validates on decode), so a torn or stale file costs one regeneration,
never a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write_bytes
from repro.isa.codec import CODEC_VERSION, TraceCodecError, verify_encoded
from repro.workloads.profile import WorkloadProfile


def trace_key(profile: WorkloadProfile, n_insts: int) -> str:
    """Cache identity of ``generate_trace(profile, n_insts)``.

    The profile fingerprint already covers the seed; the seed and budget
    stay in the key anyway so cache filenames are self-describing and the
    key matches the issue-level contract ``(fingerprint, n_insts, seed)``.
    """
    return f"{profile.fingerprint()}-s{profile.seed}-n{n_insts}"


class TraceCache:
    """Encoded-trace files rooted at ``root``, one per :func:`trace_key`.

    The codec version is part of the filename: bumping the wire format
    orphans old entries instead of making decoders reject them one by one.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.v{CODEC_VERSION}.svwt"

    def load(self, key: str) -> bytes | None:
        """Encoded trace bytes for ``key``, or None on miss.

        Returns raw bytes without validating them -- the codec's decode
        path checksums the payload, and callers fall back to regeneration
        on :class:`~repro.isa.codec.TraceCodecError`.
        """
        try:
            data = self.path_for(key).read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def save(self, key: str, data: bytes) -> None:
        atomic_write_bytes(self.path_for(key), data)

    def scrub(self, fix: bool = False) -> "TraceScrubReport":
        """Checksum every cached trace without materializing any of them.

        Runs :func:`~repro.isa.codec.verify_encoded` over each entry of
        the *current* codec version; older-version files are counted as
        orphans (decoders never open them, so they are dead weight, not a
        risk).  With ``fix=True``, corrupt entries and orphans are
        deleted -- like the result store, the cache is recomputable, so
        deletion costs one regeneration, never data.
        """
        report = TraceScrubReport()
        current = f".v{CODEC_VERSION}.svwt"
        for path in sorted(self.root.glob("*.svwt")):
            if not path.name.endswith(current):
                report.orphaned.append(path.name)
                continue
            report.scanned += 1
            try:
                verify_encoded(path.read_bytes())
            except (OSError, TraceCodecError):
                report.corrupt.append(path.name)
            else:
                report.clean += 1
        if fix:
            for name in report.corrupt + report.orphaned:
                try:
                    (self.root / name).unlink()
                    report.repaired += 1
                except OSError:
                    pass
        return report

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.svwt"))


@dataclass(slots=True)
class TraceScrubReport:
    """What :meth:`TraceCache.scrub` found (and with ``fix``, removed)."""

    #: Current-version entries checksummed.
    scanned: int = 0
    #: Entries whose payload verified clean.
    clean: int = 0
    #: Entries failing header/CRC verification.  Removed when ``fix``.
    corrupt: list[str] = field(default_factory=list)
    #: Entries from older codec versions (never read).  Removed when ``fix``.
    orphaned: list[str] = field(default_factory=list)
    #: Files actually deleted (``fix=True`` runs only).
    repaired: int = 0

    @property
    def ok(self) -> bool:
        """True when no entry is corrupt (orphans are clutter, not damage)."""
        return not self.corrupt

    def describe(self) -> str:
        parts = [f"{self.scanned} traces scanned, {self.clean} clean"]
        if self.corrupt:
            parts.append(f"{len(self.corrupt)} corrupt")
        if self.orphaned:
            parts.append(f"{len(self.orphaned)} orphaned")
        if self.repaired:
            parts.append(f"{self.repaired} repaired")
        return ", ".join(parts)
