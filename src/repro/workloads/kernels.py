"""Real algorithmic kernels for the toy ISA.

These give the simulator genuine programs -- real dataflow, real address
streams, real branch behaviour -- alongside the statistical SPEC profiles.
They are used by the examples, by end-to-end correctness tests (committed
state must match the golden functional execution for *every* machine
configuration), and as microbenchmarks whose structure isolates one
mechanism each:

==================  =====================================================
``linked_list``     pointer chasing over a shuffled list (mcf-like misses)
``hash_table``      open-addressing inserts + probes (gap/perl-like)
``insertion_sort``  store->load forwarding-heavy inner loop (SSQ stress)
``memcpy_compare``  streaming copy + verify (bzip2/gzip-like)
``matmul``          blocked dense compute (high ILP, few collisions)
``spill_fill``      call-frame push/pop traffic (RLE bypass + forwarding)
==================  =====================================================
"""

from __future__ import annotations

import random
from typing import Callable

from repro.isa.golden import trace_program
from repro.isa.inst import Trace
from repro.isa.program import Program, ProgramBuilder

_HEAP = 0x3000_0000
_TABLE = 0x3100_0000
_ARRAY = 0x3200_0000
_SRC = 0x4000_0000
_DST = 0x4100_0000
_MAT = 0x3300_0000
_STACK = 0x1000_0000


def linked_list(n_nodes: int = 256, seed: int = 7) -> Program:
    """Sum a singly-linked list laid out in shuffled order.

    Node layout: 8 bytes -- value word at +0, next-pointer word at +4.
    """
    rng = random.Random(seed)
    order = list(range(n_nodes))
    rng.shuffle(order)
    b = ProgramBuilder("linked_list", num_regs=8)
    addr_of = lambda i: _HEAP + order[i] * 16
    for i in range(n_nodes):
        b.poke(addr_of(i), rng.randrange(1, 1 << 20), size=4)
        nxt = addr_of(i + 1) if i + 1 < n_nodes else 0
        b.poke(addr_of(i) + 4, nxt, size=4)
    b.addi(1, 0, addr_of(0))  # r1 = head
    b.addi(3, 0, 0)  # r3 = sum
    loop = b.label("loop")
    b.load(2, base=1, offset=0, size=4)  # value
    b.add(3, 3, 2)
    b.load(1, base=1, offset=4, size=4)  # next
    b.bne(1, 0, loop)
    b.store(3, base=0, offset=_HEAP - 8, size=4)  # publish the sum
    b.halt()
    return b.build()


def hash_table(n_keys: int = 128, seed: int = 11) -> Program:
    """Open-addressing hash table: insert ``n_keys`` keys, then probe them."""
    table_words = 1
    while table_words < n_keys * 4:
        table_words *= 2
    mask = table_words - 1
    b = ProgramBuilder("hash_table", num_regs=16)
    b.addi(1, 0, 1)  # r1 = i (keys are i, starting at 1)
    b.addi(2, 0, n_keys + 1)  # r2 = limit
    b.addi(3, 0, 2654435761 & 0x7FFF_FFFF)  # r3 = hash multiplier
    b.addi(4, 0, mask)  # r4 = slot mask
    b.addi(5, 0, _TABLE)  # r5 = table base

    insert_loop = b.label("insert_loop")
    b.mul(6, 1, 3)
    b.shr(6, 6, 8)
    b.and_(6, 6, 4)  # r6 = slot index
    b.mul(6, 6, 3)  # re-randomise high bits ...
    b.and_(6, 6, 4)  # ... and mask again
    b.addi(7, 0, 8)
    b.mul(6, 6, 7)  # r6 = slot byte offset
    b.add(7, 5, 6)  # r7 = probe address
    probe = b.label("probe")
    b.load(8, base=7, offset=0, size=8)
    occupied = b.forward_label("occupied")
    b.bne(8, 0, occupied)
    b.store(1, base=7, offset=0, size=8)  # empty: insert key
    done_insert = b.forward_label("done_insert")
    b.jump(done_insert)
    b.place(occupied)
    b.addi(7, 7, 8)  # linear probe
    b.jump(probe)
    b.place(done_insert)
    b.addi(1, 1, 1)
    b.blt(1, 2, insert_loop)

    # Probe phase: re-hash each key and count hits.
    b.addi(1, 0, 1)
    b.addi(9, 0, 0)  # r9 = hits
    lookup_loop = b.label("lookup_loop")
    b.mul(6, 1, 3)
    b.shr(6, 6, 8)
    b.and_(6, 6, 4)
    b.mul(6, 6, 3)
    b.and_(6, 6, 4)
    b.addi(7, 0, 8)
    b.mul(6, 6, 7)
    b.add(7, 5, 6)
    probe2 = b.label("probe2")
    b.load(8, base=7, offset=0, size=8)
    found = b.forward_label("found")
    b.beq(8, 1, found)
    miss = b.forward_label("miss")
    b.beq(8, 0, miss)  # empty slot: not present (cannot happen here)
    b.addi(7, 7, 8)
    b.jump(probe2)
    b.place(found)
    b.addi(9, 9, 1)
    b.place(miss)
    b.addi(1, 1, 1)
    b.blt(1, 2, lookup_loop)
    b.store(9, base=0, offset=_TABLE - 8, size=8)
    b.halt()
    return b.build()


def insertion_sort(n: int = 48, seed: int = 13) -> Program:
    """Insertion sort of a descending array: worst-case store->load traffic."""
    b = ProgramBuilder("insertion_sort", num_regs=16)
    rng = random.Random(seed)
    values = sorted((rng.randrange(1, 1 << 30) for _ in range(n)), reverse=True)
    for i, v in enumerate(values):
        b.poke(_ARRAY + i * 8, v, size=8)
    b.addi(1, 0, 1)  # r1 = i
    b.addi(2, 0, n)  # r2 = n
    b.addi(3, 0, _ARRAY)  # r3 = base
    b.addi(10, 0, 8)
    outer = b.label("outer")
    b.mul(4, 1, 10)
    b.add(4, 3, 4)  # r4 = &a[i]
    b.load(5, base=4, offset=0, size=8)  # r5 = key
    b.addi(6, 4, -8)  # r6 = &a[j], j = i-1
    inner = b.label("inner")
    inner_done = b.forward_label("inner_done")
    b.blt(6, 3, inner_done)  # j < 0
    b.load(7, base=6, offset=0, size=8)  # r7 = a[j]
    b.bge(5, 7, inner_done)  # a[j] <= key
    b.store(7, base=6, offset=8, size=8)  # a[j+1] = a[j]
    b.addi(6, 6, -8)
    b.jump(inner)
    b.place(inner_done)
    b.store(5, base=6, offset=8, size=8)  # a[j+1] = key
    b.addi(1, 1, 1)
    b.blt(1, 2, outer)
    b.halt()
    return b.build()


def memcpy_compare(n_words: int = 512, seed: int = 17) -> Program:
    """Copy a buffer word-by-word, then stream back over both and compare."""
    b = ProgramBuilder("memcpy_compare", num_regs=16)
    rng = random.Random(seed)
    for i in range(n_words):
        b.poke(_SRC + i * 4, rng.getrandbits(31), size=4)
    b.addi(1, 0, _SRC)
    b.addi(2, 0, _DST)
    b.addi(3, 0, _SRC + n_words * 4)  # limit
    copy = b.label("copy")
    b.load(4, base=1, offset=0, size=4)
    b.store(4, base=2, offset=0, size=4)
    b.addi(1, 1, 4)
    b.addi(2, 2, 4)
    b.blt(1, 3, copy)
    # Verify.
    b.addi(1, 0, _SRC)
    b.addi(2, 0, _DST)
    b.addi(5, 0, 0)  # mismatch count
    check = b.label("check")
    b.load(4, base=1, offset=0, size=4)
    b.load(6, base=2, offset=0, size=4)
    same = b.forward_label("same")
    b.beq(4, 6, same)
    b.addi(5, 5, 1)
    b.place(same)
    b.addi(1, 1, 4)
    b.addi(2, 2, 4)
    b.blt(1, 3, check)
    b.store(5, base=0, offset=_DST - 8, size=4)
    b.halt()
    return b.build()


def matmul(n: int = 10, seed: int = 19) -> Program:
    """Dense n x n integer matrix multiply (C = A * B)."""
    b = ProgramBuilder("matmul", num_regs=24)
    rng = random.Random(seed)
    a_base, b_base, c_base = _MAT, _MAT + n * n * 8, _MAT + 2 * n * n * 8
    for i in range(n * n):
        b.poke(a_base + i * 8, rng.randrange(64), size=8)
        b.poke(b_base + i * 8, rng.randrange(64), size=8)
    b.addi(1, 0, 0)  # i
    b.addi(20, 0, n)
    b.addi(21, 0, 8)
    li = b.label("loop_i")
    b.addi(2, 0, 0)  # j
    lj = b.label("loop_j")
    b.addi(3, 0, 0)  # k
    b.addi(4, 0, 0)  # acc
    lk = b.label("loop_k")
    b.mul(5, 1, 20)
    b.add(5, 5, 3)
    b.mul(5, 5, 21)
    b.addi(5, 5, a_base)
    b.load(6, base=5, offset=0, size=8)  # A[i][k]
    b.mul(7, 3, 20)
    b.add(7, 7, 2)
    b.mul(7, 7, 21)
    b.addi(7, 7, b_base)
    b.load(8, base=7, offset=0, size=8)  # B[k][j]
    b.mul(9, 6, 8)
    b.add(4, 4, 9)
    b.addi(3, 3, 1)
    b.blt(3, 20, lk)
    b.mul(5, 1, 20)
    b.add(5, 5, 2)
    b.mul(5, 5, 21)
    b.addi(5, 5, c_base)
    b.store(4, base=5, offset=0, size=8)  # C[i][j]
    b.addi(2, 2, 1)
    b.blt(2, 20, lj)
    b.addi(1, 1, 1)
    b.blt(1, 20, li)
    b.halt()
    return b.build()


def spill_fill(n_frames: int = 400, seed: int = 23) -> Program:
    """Call-frame style push/compute/pop traffic.

    Each iteration spills two live values to the stack, computes over
    scratch registers, then fills the spilled values back -- the classic
    save/restore pattern behind most store-load forwarding (and behind
    RLE's speculative memory bypassing).
    """
    b = ProgramBuilder("spill_fill", num_regs=16)
    b.addi(1, 0, _STACK + 0x8000)  # r1 = stack pointer
    b.addi(2, 0, 1)  # r2, r3 = live values
    b.addi(3, 0, 2)
    b.addi(4, 0, 0)  # r4 = iteration counter
    b.addi(5, 0, n_frames)
    loop = b.label("loop")
    b.addi(1, 1, -16)  # open frame
    b.store(2, base=1, offset=0, size=8)  # spill r2
    b.store(3, base=1, offset=8, size=8)  # spill r3
    # "Callee" computation clobbers r2/r3.
    b.add(6, 2, 3)
    b.mul(7, 6, 6)
    b.xor(2, 7, 6)
    b.addi(3, 7, 3)
    b.add(8, 2, 3)
    # Restore the caller's values.
    b.load(2, base=1, offset=0, size=8)  # fill r2
    b.load(3, base=1, offset=8, size=8)  # fill r3
    b.addi(1, 1, 16)  # close frame
    b.add(2, 2, 8)  # fold callee result into live state
    b.addi(4, 4, 1)
    b.blt(4, 5, loop)
    b.store(2, base=0, offset=_STACK - 8, size=8)
    b.halt()
    return b.build()


KERNELS: dict[str, Callable[[], Program]] = {
    "linked_list": linked_list,
    "hash_table": hash_table,
    "insertion_sort": insertion_sort,
    "memcpy_compare": memcpy_compare,
    "matmul": matmul,
    "spill_fill": spill_fill,
}


def kernel_trace(name: str, **kwargs: int) -> Trace:
    """Build and functionally execute a kernel, returning its trace."""
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; options: {sorted(KERNELS)}")
    return trace_program(KERNELS[name](**kwargs))
