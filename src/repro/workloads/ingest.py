"""Content-addressed ingestion of external trace files.

External column traces (captured elsewhere, exported by other tools, or
archived from old sweeps) enter the system through exactly one door: an
:class:`IngestStore` that checks the bytes in under their SHA-256 content
digest after full validation -- codec framing and checksum
(:func:`~repro.isa.codec.verify_encoded`), column reconstruction
(:func:`~repro.isa.codec.decode_trace`), and the complete
:meth:`~repro.isa.coltrace.ColumnTrace.validate` invariant sweep.  From
then on the trace is addressed as ``ingest:<digest>`` and flows through
the same codec / :class:`~repro.workloads.trace_cache.TraceCache` /
``workload_key`` machinery as generated traces.

Trust model: an ingested trace is **validated data, never code**.  The
decoder executes nothing from the file; every structural invariant the
simulator relies on is re-proven at ingest time *and again on every
load* (a store entry that rots on disk is rejected, not trusted), and
files above :data:`MAX_INGEST_BYTES` are refused outright so a stray
multi-gigabyte blob cannot wedge workers that materialize traces by key.

Layout mirrors the trace cache: one ``<digest>.svwt`` (the encoded bytes,
verbatim) plus one ``<digest>.json`` manifest carrying the display name
and self-described instruction count.  Writes are atomic, and
:meth:`IngestStore.scrub` gives ``svw-repro fsck`` the same
orphan/checksum pass the other stores have.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write_bytes
from repro.isa.codec import (
    TraceCodecError,
    decode_trace,
    encode_trace,
    peek_encoded,
    verify_encoded,
)
from repro.isa.coltrace import ColumnTrace
from repro.isa.inst import Trace

#: Hard cap on an ingested trace file.  Far above any realistic column
#: trace (30K instructions encode to ~200 KB) while keeping a corrupt or
#: hostile length field from ballooning worker memory.
MAX_INGEST_BYTES = 64 << 20


class IngestError(ValueError):
    """Raised when a trace file cannot be ingested or loaded."""


@dataclass(frozen=True, slots=True)
class IngestRecord:
    """One checked-in trace: its digest and self-described identity."""

    digest: str
    name: str
    n_insts: int
    nbytes: int

    def to_dict(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "name": self.name,
            "n_insts": self.n_insts,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "IngestRecord":
        return cls(
            digest=str(payload["digest"]),
            name=str(payload["name"]),
            n_insts=int(payload["n_insts"]),  # type: ignore[call-overload]
            nbytes=int(payload["nbytes"]),  # type: ignore[call-overload]
        )


def _validated(data: bytes, origin: str) -> dict:
    """Prove ``data`` is a well-formed, invariant-clean encoded trace."""
    if len(data) > MAX_INGEST_BYTES:
        raise IngestError(
            f"{origin}: {len(data)} bytes exceeds the "
            f"{MAX_INGEST_BYTES}-byte ingest cap"
        )
    try:
        verify_encoded(data)
        trace = decode_trace(data)
        trace.validate()
    except (TraceCodecError, ValueError) as exc:
        raise IngestError(f"{origin}: not a valid encoded trace: {exc}") from exc
    return {"trace": trace, "header": peek_encoded(data)}


def load_trace_file(path: Path) -> tuple[str, ColumnTrace]:
    """Validate and load a standalone ``.svwt`` file (no store involved).

    Returns ``(content digest, trace)`` so callers can record provenance;
    the same validation gate as :meth:`IngestStore.ingest_bytes` applies.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise IngestError(f"{path}: {exc}") from exc
    checked = _validated(data, str(path))
    return hashlib.sha256(data).hexdigest(), checked["trace"]


class IngestStore:
    """Validated external traces rooted at ``root``, one per digest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.svwt"

    def manifest_for(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    # -- checking traces in ---------------------------------------------------

    def ingest_bytes(self, data: bytes, name: str | None = None) -> IngestRecord:
        """Validate ``data`` and check it in under its content digest.

        Idempotent: re-ingesting identical bytes rewrites the same entry.
        ``name`` overrides the display name in the manifest (the encoded
        trace's own name is the default).
        """
        checked = _validated(data, name or "<bytes>")
        digest = hashlib.sha256(data).hexdigest()
        record = IngestRecord(
            digest=digest,
            name=name or checked["header"]["name"],
            n_insts=checked["header"]["n_insts"],
            nbytes=len(data),
        )
        atomic_write_bytes(self.path_for(digest), data)
        atomic_write_bytes(
            self.manifest_for(digest),
            json.dumps(record.to_dict(), sort_keys=True, indent=2).encode(),
        )
        return record

    def ingest_file(self, path: str | Path, name: str | None = None) -> IngestRecord:
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise IngestError(f"{path}: {exc}") from exc
        if size > MAX_INGEST_BYTES:
            raise IngestError(
                f"{path}: {size} bytes exceeds the {MAX_INGEST_BYTES}-byte "
                "ingest cap"
            )
        return self.ingest_bytes(path.read_bytes(), name=name)

    def ingest_trace(
        self, trace: Trace | ColumnTrace, name: str | None = None
    ) -> IngestRecord:
        """Encode and check in an in-memory trace (archival path)."""
        return self.ingest_bytes(encode_trace(trace), name=name)

    # -- reading traces out ---------------------------------------------------

    def records(self) -> list[IngestRecord]:
        """All checked-in traces, sorted by digest."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                out.append(IngestRecord.from_dict(json.loads(path.read_text())))
            except (OSError, ValueError, KeyError):
                continue
        return out

    def find(self, prefix: str) -> IngestRecord:
        """The unique record whose digest starts with ``prefix``."""
        if not prefix:
            raise IngestError("empty ingest digest")
        matches = [r for r in self.records() if r.digest.startswith(prefix)]
        if not matches:
            raise IngestError(f"no ingested trace matches {prefix!r}")
        if len(matches) > 1:
            raise IngestError(
                f"{prefix!r} is ambiguous: "
                + ", ".join(r.digest[:12] for r in matches)
            )
        return matches[0]

    def load(self, digest: str) -> ColumnTrace:
        """The trace for ``digest``, fully re-validated on every load."""
        path = self.path_for(digest)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise IngestError(f"ingested trace {digest[:12]} missing: {exc}") from exc
        if hashlib.sha256(data).hexdigest() != digest:
            raise IngestError(f"ingested trace {digest[:12]} fails its digest")
        return _validated(data, str(path))["trace"]

    # -- fsck -----------------------------------------------------------------

    def scrub(self, fix: bool = False) -> "IngestScrubReport":
        """Digest + checksum every entry; flag manifest/trace orphans.

        With ``fix=True`` corrupt traces and orphaned manifests are
        deleted -- unlike the regenerable caches this *is* data loss, so
        fsck only fixes here when explicitly told to.
        """
        report = IngestScrubReport()
        manifests = {p.stem for p in self.root.glob("*.json")}
        for path in sorted(self.root.glob("*.svwt")):
            digest = path.stem
            report.scanned += 1
            try:
                data = path.read_bytes()
                if hashlib.sha256(data).hexdigest() != digest:
                    raise IngestError("content digest mismatch")
                verify_encoded(data)
            except (OSError, IngestError, TraceCodecError):
                report.corrupt.append(path.name)
            else:
                report.clean += 1
            if digest not in manifests:
                report.orphaned.append(f"{digest}.json (missing manifest)")
            manifests.discard(digest)
        report.orphaned.extend(f"{stem}.json" for stem in sorted(manifests))
        if fix:
            for name in report.corrupt + [
                o for o in report.orphaned if not o.endswith("(missing manifest)")
            ]:
                try:
                    (self.root / name).unlink()
                    report.repaired += 1
                except OSError:
                    pass
        return report

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.svwt"))


@dataclass(slots=True)
class IngestScrubReport:
    """What :meth:`IngestStore.scrub` found (and with ``fix``, removed)."""

    #: Trace files examined.
    scanned: int = 0
    #: Trace files whose digest and codec checksum both verified.
    clean: int = 0
    #: Trace files failing digest or checksum.  Removed when ``fix``.
    corrupt: list[str] = field(default_factory=list)
    #: Manifests without traces, or traces without manifests.
    orphaned: list[str] = field(default_factory=list)
    #: Files actually deleted (``fix=True`` runs only).
    repaired: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing is corrupt or orphaned."""
        return not self.corrupt and not self.orphaned

    def describe(self) -> str:
        parts = [f"{self.scanned} ingested traces scanned, {self.clean} clean"]
        if self.corrupt:
            parts.append(f"{len(self.corrupt)} corrupt")
        if self.orphaned:
            parts.append(f"{len(self.orphaned)} orphaned")
        if self.repaired:
            parts.append(f"{self.repaired} repaired")
        return ", ".join(parts)
