"""Conventional load-store unit (Figure 2a).

An associative SQ forwards from every resolved older in-flight store; an
associative LQ enforces intra-thread ordering: when a store resolves its
address, it searches the LQ for younger loads to the same address that
issued prematurely, and a match flushes the load and everything younger.
The LQ's single associative port is what limits the baseline machine to
one store issue per cycle in the Figure 5 experiments.
"""

from __future__ import annotations

from repro.isa.inst import KIND_LOAD
from repro.lsu.base import LoadStoreUnit, store_word_value
from repro.pipeline.inflight import InFlight


class ConventionalLSU(LoadStoreUnit):
    """Associative SQ + associative LQ."""

    __slots__ = ("_loads_by_word",)

    def __init__(self, proc) -> None:
        super().__init__(proc)
        # Issued speculative loads indexed by word, for the LQ search.
        self._loads_by_word: dict[int, list[InFlight]] = {}

    def load_must_wait(self, load: InFlight) -> InFlight | None:
        return self._sq_data_blocker(load)

    def execute_load(self, load: InFlight) -> None:
        self._assemble(load)  # default visibility: store.done
        loads_by_word = self._loads_by_word
        for word in self.proc.meta.words[load.seq]:
            loads_by_word.setdefault(word, []).append(load)

    def on_store_resolved(self, store: InFlight) -> InFlight | None:
        """LQ search: oldest younger load that issued with a stale source.

        The search is value-aware (section 2.2: "If the LQ contains values
        in addition to addresses, some flushes may be avoided as the search
        procedure could ignore ordering violations from silent stores"): a
        younger load whose read already matches what the store writes is
        not flushed.
        """
        victim: InFlight | None = None
        for word in self.proc.meta.words[store.seq]:
            loads = self._loads_by_word.get(word)
            if not loads:
                continue
            live = [ld for ld in loads if not ld.squashed and ld.issued]
            if len(live) != len(loads):
                self._loads_by_word[word] = live
            written = store_word_value(store, word)
            for load in live:
                if load.seq <= store.seq or load.word_sources is None:
                    continue
                index = index_of_word(load, word)
                source = load.word_sources[index]
                observed = (load.exec_value >> (32 * index)) & 0xFFFF_FFFF
                if (
                    source < store.seq
                    and observed != written
                    and (victim is None or load.seq < victim.seq)
                ):
                    victim = load
        return victim

    def _drop(self, load: InFlight) -> None:
        if load.kind == KIND_LOAD and load.word_sources is not None:
            for word in self.proc.meta.words[load.seq]:
                loads = self._loads_by_word.get(word)
                if loads is not None:
                    try:
                        loads.remove(load)
                    except ValueError:
                        pass

    def on_load_commit(self, load: InFlight) -> None:
        self._drop(load)

    def on_squash(self, entry: InFlight) -> None:
        if entry.kind == KIND_LOAD:
            self._drop(entry)


def index_of_word(load: InFlight, word: int) -> int:
    """Position of ``word`` in the load's word tuple (0 or 1)."""
    return 0 if word == load.addr else 1
