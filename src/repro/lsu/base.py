"""LSU interface and shared forwarding helpers.

The processor owns the functional state (committed memory, the in-flight
store index); LSU variants implement *visibility*: which older stores a
load can see at execution time.  Getting visibility wrong is never fatal --
it produces a stale value that the re-execution machinery must catch,
which is precisely the speculation the paper studies.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable

from repro.pipeline.inflight import InFlight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.processor import Processor

#: word_sources value meaning "word came from committed memory".
FROM_MEMORY = -1


def store_word_value(store: InFlight, word: int) -> int:
    """The 32-bit value ``store`` writes to 4-byte-aligned ``word``."""
    inst = store.inst
    if word == inst.addr:
        return inst.store_value & 0xFFFF_FFFF
    return (inst.store_value >> 32) & 0xFFFF_FFFF


class LoadStoreUnit(abc.ABC):
    """One load-store unit organization."""

    def __init__(self, proc: "Processor") -> None:
        self.proc = proc

    # -- dispatch hooks ---------------------------------------------------------

    def store_dispatch_ready(self, store: InFlight) -> bool:
        """False if structural state (e.g. a full FSQ) must stall dispatch."""
        return True

    def on_store_dispatch(self, store: InFlight) -> None:
        """Allocate variant-specific store state."""

    def on_load_dispatch(self, load: InFlight) -> None:
        """Allocate variant-specific load state."""

    # -- execution hooks -----------------------------------------------------------

    def load_uses_fsq(self, load: InFlight) -> bool:
        """Does this load need an FSQ port to issue?"""
        return False

    @abc.abstractmethod
    def execute_load(self, load: InFlight) -> None:
        """Produce the load's execution-time value.

        Must set ``exec_value``, ``word_sources`` and ``forwarded_ssn``;
        may set ``marked`` (natural re-execution filter) and ``fsq``.
        """

    def on_store_resolved(self, store: InFlight) -> InFlight | None:
        """Store address generation finished (data may still be pending).

        Returns the oldest load that violated ordering against this store
        (conventional LQ search), or None.
        """
        return None

    def on_store_forwardable(self, store: InFlight) -> None:
        """Store address *and* data are now available."""

    def load_must_wait(self, load: InFlight) -> InFlight | None:
        """A store the load must wait for before issuing, or None.

        An SQ CAM match against a store whose address is known but whose
        data has not arrived cannot forward; the load replays until the
        data shows up.  Variants without an associative SQ return None
        (the load proceeds and re-execution cleans up).
        """
        return None

    def _sq_data_blocker(self, load: InFlight) -> InFlight | None:
        """Shared implementation of :meth:`load_must_wait` for CAM-SQ LSUs."""
        for word in load.inst.words():
            stores = self.proc.store_words.get(word)
            if not stores:
                continue
            for store in reversed(stores):
                if store.seq >= load.seq or store.squashed or not store.issued:
                    continue  # younger, gone, or address unknown to the CAM
                if not store.done:
                    return store  # CAM match without data yet: replay
                break  # youngest older CAM match can forward
        return None

    # -- retirement hooks ----------------------------------------------------------------

    def on_store_commit(self, store: InFlight) -> None:
        """Free variant-specific store state."""

    def on_load_commit(self, load: InFlight) -> None:
        """Free variant-specific load state."""

    def on_squash(self, entry: InFlight) -> None:
        """Entry squashed; release its variant-specific state."""

    def on_rex_failure(self, load: InFlight, store_pc: int | None) -> None:
        """Re-execution caught a stale load; train steering/dependence state."""

    # -- shared helpers ----------------------------------------------------------------------

    def _word_from_stores(
        self,
        word: int,
        before_seq: int,
        visible: Callable[[InFlight], bool],
    ) -> tuple[int, InFlight | None]:
        """Value of ``word`` seen by a load at ``before_seq``.

        Searches in-flight stores older than ``before_seq`` satisfying
        ``visible`` (youngest first); falls back to committed memory.
        Returns ``(value, supplying_store_or_None)``.
        """
        stores = self.proc.store_words.get(word)
        if stores:
            for store in reversed(stores):
                if store.seq < before_seq and not store.squashed and visible(store):
                    return store_word_value(store, word), store
        return self.proc.committed_memory.read(word, 4), None

    def _assemble(
        self,
        load: InFlight,
        visible: Callable[[InFlight], bool],
    ) -> None:
        """Per-word value assembly with the given store-visibility rule."""
        inst = load.inst
        sources = []
        forwarded_ssns = []
        value = 0
        for shift, word in enumerate(inst.words()):
            word_value, store = self._word_from_stores(word, load.seq, visible)
            value |= word_value << (32 * shift)
            if store is None:
                sources.append(FROM_MEMORY)
                forwarded_ssns.append(0)
            else:
                sources.append(store.seq)
                forwarded_ssns.append(store.ssn)
        if inst.size == 4:
            value &= 0xFFFF_FFFF
        load.exec_value = value
        load.word_sources = tuple(sources)
        # Conservative multi-word rule: the load only becomes invulnerable
        # up to the *oldest* contributing store; any memory-supplied word
        # means no shrink at all (ssn 0).
        load.forwarded_ssn = min(forwarded_ssns)
        if load.forwarded_ssn > 0:
            self.proc.stats.forwarded_loads += 1
