"""LSU interface and shared forwarding helpers.

The processor owns the functional state (committed memory, the in-flight
store index); LSU variants implement *visibility*: which older stores a
load can see at execution time.  Getting visibility wrong is never fatal --
it produces a stale value that the re-execution machinery must catch,
which is precisely the speculation the paper studies.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable

from repro.pipeline.inflight import InFlight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.processor import Processor

#: word_sources value meaning "word came from committed memory".
FROM_MEMORY = -1


def store_word_value(store: InFlight, word: int) -> int:
    """The 32-bit value ``store`` writes to 4-byte-aligned ``word``."""
    if word == store.addr:
        return store.store_value & 0xFFFF_FFFF
    return (store.store_value >> 32) & 0xFFFF_FFFF


class LoadStoreUnit(abc.ABC):
    """One load-store unit organization."""

    __slots__ = ("proc",)

    def __init__(self, proc: "Processor") -> None:
        self.proc = proc

    # -- dispatch hooks ---------------------------------------------------------

    def store_dispatch_ready(self, store: InFlight) -> bool:
        """False if structural state (e.g. a full FSQ) must stall dispatch."""
        return True

    def on_store_dispatch(self, store: InFlight) -> None:
        """Allocate variant-specific store state."""

    def on_load_dispatch(self, load: InFlight) -> None:
        """Allocate variant-specific load state."""

    # -- execution hooks -----------------------------------------------------------
    #
    # FSQ port contract: the scheduler charges a load against the FSQ
    # issue port iff ``load.fsq`` is set.  Variants that steer loads at
    # the FSQ (the SSQ) must set the flag at dispatch.

    @abc.abstractmethod
    def execute_load(self, load: InFlight) -> None:
        """Produce the load's execution-time value.

        Must set ``exec_value``, ``word_sources`` and ``forwarded_ssn``;
        may set ``marked`` (natural re-execution filter) and ``fsq``.
        """

    def on_store_resolved(self, store: InFlight) -> InFlight | None:
        """Store address generation finished (data may still be pending).

        Returns the oldest load that violated ordering against this store
        (conventional LQ search), or None.
        """
        return None

    def on_store_forwardable(self, store: InFlight) -> None:
        """Store address *and* data are now available."""

    def load_must_wait(self, load: InFlight) -> InFlight | None:
        """A store the load must wait for before issuing, or None.

        An SQ CAM match against a store whose address is known but whose
        data has not arrived cannot forward; the load replays until the
        data shows up.  Variants without an associative SQ return None
        (the load proceeds and re-execution cleans up).
        """
        return None

    def _sq_data_blocker(self, load: InFlight) -> InFlight | None:
        """Shared implementation of :meth:`load_must_wait` for CAM-SQ LSUs."""
        proc = self.proc
        load_seq = load.seq
        for word in proc.meta.words[load_seq]:
            stores = proc.store_words.get(word)
            if not stores:
                continue
            for store in reversed(stores):
                if store.seq >= load.seq or store.squashed or not store.issued:
                    continue  # younger, gone, or address unknown to the CAM
                if not store.done:
                    return store  # CAM match without data yet: replay
                break  # youngest older CAM match can forward
        return None

    # -- retirement hooks ----------------------------------------------------------------

    def on_store_commit(self, store: InFlight) -> None:
        """Free variant-specific store state."""

    def on_load_commit(self, load: InFlight) -> None:
        """Free variant-specific load state."""

    def on_squash(self, entry: InFlight) -> None:
        """Entry squashed; release its variant-specific state."""

    def on_rex_failure(self, load: InFlight, store_pc: int | None) -> None:
        """Re-execution caught a stale load; train steering/dependence state."""

    # -- shared helpers ----------------------------------------------------------------------

    def _assemble(
        self,
        load: InFlight,
        visible: Callable[[InFlight], bool] | None = None,
    ) -> None:
        """Per-word value assembly with the given store-visibility rule.

        ``visible=None`` is the common "address resolved and data present"
        rule (``store.done``), inlined without a predicate call per store
        because this runs once per issued load.
        """
        proc = self.proc
        load_seq = load.seq
        store_words = proc.store_words
        committed_read = proc.committed_memory.read
        words = proc.meta.words[load_seq]
        if len(words) == 1 and visible is None:
            # Single-word fast path (the overwhelmingly common shape).
            word = words[0]
            supplier = None
            stores = store_words.get(word)
            if stores:
                for store in reversed(stores):
                    if store.seq < load_seq and not store.squashed and store.done:
                        supplier = store
                        break
            if supplier is None:
                load.exec_value = committed_read(word, 4)
                load.word_sources = (FROM_MEMORY,)
                load.forwarded_ssn = 0
            else:
                load.exec_value = store_word_value(supplier, word)
                load.word_sources = (supplier.seq,)
                load.forwarded_ssn = supplier.ssn
                if supplier.ssn > 0:
                    proc.stats.forwarded_loads += 1
            return
        sources = []
        forwarded_ssns = []
        value = 0
        for shift, word in enumerate(words):
            supplier = None
            stores = store_words.get(word)
            if stores:
                for store in reversed(stores):
                    if (
                        store.seq < load_seq
                        and not store.squashed
                        and (store.done if visible is None else visible(store))
                    ):
                        supplier = store
                        break
            if supplier is None:
                value |= committed_read(word, 4) << (32 * shift)
                sources.append(FROM_MEMORY)
                forwarded_ssns.append(0)
            else:
                value |= store_word_value(supplier, word) << (32 * shift)
                sources.append(supplier.seq)
                forwarded_ssns.append(supplier.ssn)
        if load.size == 4:
            value &= 0xFFFF_FFFF
        load.exec_value = value
        load.word_sources = tuple(sources)
        # Conservative multi-word rule: the load only becomes invulnerable
        # up to the *oldest* contributing store; any memory-supplied word
        # means no shrink at all (ssn 0).
        load.forwarded_ssn = min(forwarded_ssns)
        if load.forwarded_ssn > 0:
            proc.stats.forwarded_loads += 1
