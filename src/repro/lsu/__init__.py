"""Load-store unit variants (paper section 2, Figure 2).

- :mod:`repro.lsu.base` -- the interface and shared forwarding helpers.
- :mod:`repro.lsu.conventional` -- associative SQ + associative LQ baseline
  (Figure 2a): full store-load forwarding, LQ search at store resolution.
- :mod:`repro.lsu.nlq` -- non-associative LQ (Figure 2b): forwarding as in
  the baseline, but ordering enforcement moves to pre-commit re-execution;
  the scheduler marks loads that issue past unresolved older stores.
- :mod:`repro.lsu.ssq` -- speculative SQ (Figure 2c): a large
  non-associative retirement queue plus a small forwarding queue (FSQ)
  reached through a steering predictor, with per-bank best-effort
  forwarding buffers; *every* load is marked.
"""

from repro.lsu.base import LoadStoreUnit
from repro.lsu.conventional import ConventionalLSU
from repro.lsu.nlq import NonAssociativeLQ
from repro.lsu.ssq import SpeculativeSQ

__all__ = [
    "ConventionalLSU",
    "LoadStoreUnit",
    "NonAssociativeLQ",
    "SpeculativeSQ",
]
