"""Non-associative load queue (Figure 2b; Cain & Lipasti, ISCA 2004).

The LQ's associative search port is removed: stores no longer search the
LQ when their addresses resolve, which frees the machine to issue two
stores per cycle.  Ordering violations are instead caught by in-order
pre-commit load re-execution.  The *natural re-execution filter* is the
scheduler: "only loads that issued in the presence of older stores with
unresolved addresses are re-executed" -- these are the *marked* loads.

Store-load pair training uses the SPCT (section 2.2): on a flush, the
conflicting store's PC is retrieved from the SPCT using the load address
and fed to store-sets.
"""

from __future__ import annotations

from repro.lsu.base import LoadStoreUnit
from repro.pipeline.inflight import InFlight


class NonAssociativeLQ(LoadStoreUnit):
    """Associative SQ for forwarding; re-execution for ordering."""

    __slots__ = ()

    def load_must_wait(self, load: InFlight) -> InFlight | None:
        return self._sq_data_blocker(load)

    def execute_load(self, load: InFlight) -> None:
        self._assemble(load)  # default visibility: store.done
        # Natural filter: mark loads issuing past unresolved older stores.
        if self.proc.older_unresolved_store_exists(load.seq):
            load.marked = True

    def on_rex_failure(self, load: InFlight, store_pc: int | None) -> None:
        """Train a precise store-load pair through the SPCT."""
        if store_pc is not None and self.proc.store_sets is not None:
            self.proc.store_sets.train(load.pc, store_pc)
