"""Speculative store queue (Figure 2c; Roth TR-04-09 / Baugh & Zilles).

The conventional SQ's two jobs are split:

- a large, non-associative **retirement SQ (RSQ)** buffers all in-flight
  stores for in-order retirement (off the load critical path);
- a small, single-ported **forwarding SQ (FSQ)** performs store-load
  forwarding for the few load/store static instructions that need it;
- an 8-entry unordered **forwarding buffer** in front of each cache bank
  handles the simple, unambiguous in-order forwarding cases best-effort.

Steering is a predictor: one bit per static instruction (held in the
instruction cache in hardware; a PC set here).  Initially no loads or
stores use the FSQ; when re-execution detects a missed or wrong forwarding
instance, the participating load PC and store PC (recovered through the
SPCT) are tagged for future FSQ access/entry.

SSQ has **no natural re-execution filter**: every load is marked, because
even a load that has never read from a store must re-execute to make sure
its first forwarding instance is not missed.  This is the optimization SVW
*enables* (section 3.3).
"""

from __future__ import annotations

from collections import deque

from repro.isa.inst import KIND_STORE
from repro.lsu.base import FROM_MEMORY, LoadStoreUnit
from repro.pipeline.inflight import InFlight


class SpeculativeSQ(LoadStoreUnit):
    """RSQ + FSQ + per-bank best-effort forwarding buffers."""

    __slots__ = ("fsq_size", "fsq_occupancy", "load_bits", "store_bits", "_buffers")

    def __init__(self, proc) -> None:
        super().__init__(proc)
        config = proc.config
        self.fsq_size = config.fsq_size
        self.fsq_occupancy = 0
        self.load_bits: set[int] = set()
        self.store_bits: set[int] = set()
        banks = config.hierarchy.l1d.banks
        self._buffers: list[deque[InFlight]] = [
            deque(maxlen=config.forward_buffer_entries) for _ in range(banks)
        ]

    # -- dispatch -----------------------------------------------------------------

    def store_dispatch_ready(self, store: InFlight) -> bool:
        if store.pc in self.store_bits:
            return self.fsq_occupancy < self.fsq_size
        return True

    def on_store_dispatch(self, store: InFlight) -> None:
        if store.pc in self.store_bits:
            store.fsq = True
            self.fsq_occupancy += 1

    def on_load_dispatch(self, load: InFlight) -> None:
        # No natural filter: every load re-executes (absent SVW).
        load.marked = True
        if load.pc in self.load_bits:
            load.fsq = True

    # -- execution -------------------------------------------------------------------

    def execute_load(self, load: InFlight) -> None:
        if load.fsq:
            # FSQ search: only FSQ-resident complete stores are visible.
            self._assemble(load, lambda st: st.fsq and st.done)
            return
        # Best-effort path: the bank's forwarding buffer, else the cache.
        proc = self.proc
        words = proc.meta.words[load.seq]
        bank = proc.hierarchy.load_bank(load.addr)
        match: InFlight | None = None
        for store in reversed(self._buffers[bank]):
            if (
                store.seq < load.seq
                and not store.squashed
                and store.addr == load.addr
                and store.size == load.size
            ):
                match = store
                break
        if match is not None:
            load.exec_value = match.store_value
            load.word_sources = tuple(match.seq for _ in words)
            # Best-effort forwarding "does not maintain the invariants
            # required" for the SVW forward update (section 4.2).
            load.forwarded_ssn = 0
            proc.stats.forwarded_loads += 1
            return
        # In-flight stores are invisible outside the FSQ/buffer: read the
        # committed image (the cache).  Stale values are caught by rex.
        value = 0
        for shift, word in enumerate(words):
            value |= proc.committed_memory.read(word, 4) << (32 * shift)
        if load.size == 4:
            value &= 0xFFFF_FFFF
        load.exec_value = value
        load.word_sources = tuple(FROM_MEMORY for _ in words)
        load.forwarded_ssn = 0

    def on_store_forwardable(self, store: InFlight) -> None:
        # Insert into the bank's best-effort buffer (FIFO, unordered) once
        # both the address and the value exist.
        bank = self.proc.hierarchy.load_bank(store.addr)
        self._buffers[bank].append(store)

    # -- retirement / recovery --------------------------------------------------------

    def on_store_commit(self, store: InFlight) -> None:
        self._release(store)

    def on_squash(self, entry: InFlight) -> None:
        if entry.kind == KIND_STORE:
            self._release(entry)

    def _release(self, store: InFlight) -> None:
        if store.fsq:
            store.fsq = False
            self.fsq_occupancy -= 1
        bank = self.proc.hierarchy.load_bank(store.addr)
        try:
            self._buffers[bank].remove(store)
        except ValueError:
            pass

    def on_rex_failure(self, load: InFlight, store_pc: int | None) -> None:
        """Tag the participating load and store for FSQ access/entry.

        The pair also trains store-sets: a stale load that issued before
        the store resolved must learn to wait, FSQ or not (both machine
        configurations "use store-sets to manage load speculation").
        """
        self.load_bits.add(load.pc)
        if store_pc is not None:
            self.store_bits.add(store_pc)
            if self.proc.store_sets is not None:
                self.proc.store_sets.train(load.pc, store_pc)
