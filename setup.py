"""Shim for legacy editable installs (offline environments without wheel).

All project metadata lives in pyproject.toml; setuptools >= 61 reads it.
"""

from setuptools import setup

setup()
