#!/usr/bin/env python
"""Experiment API walkthrough: declarative specs, backends, cached results.

Builds a small Figure-5-style sweep, runs it four ways -- serially, across
a process pool, through the workload-batched runner, and against a warm
on-disk cache -- and shows that all four produce identical statistics.
"""

import tempfile
import time

from repro.experiments import (
    BatchRunner,
    ExperimentBuilder,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    run_experiment,
)
from repro.harness.configs import fig5_configs


def main() -> None:
    spec = (
        ExperimentBuilder("fig5-demo")
        .configs(fig5_configs())
        .workloads(["gcc", "vortex"])
        .insts(10_000)
        .build()
    )
    print(f"spec: {len(spec.cells())} cells, fingerprint {spec.fingerprint()[:12]}...")

    started = time.perf_counter()
    serial = run_experiment(spec, backend=SerialBackend())
    print(f"serial backend:       {time.perf_counter() - started:.1f}s")

    started = time.perf_counter()
    pooled = run_experiment(spec, backend=ProcessPoolBackend(jobs=4))
    print(f"process-pool backend: {time.perf_counter() - started:.1f}s")
    assert pooled.to_dict() == serial.to_dict(), "backends must agree bit-for-bit"

    # The batch runner (what `svw-repro --jobs N` uses) generates/encodes
    # each workload trace once, ships it to workers via shared memory, and
    # runs all of a workload's configs in a single pass over one trace.
    started = time.perf_counter()
    batched = run_experiment(spec, backend=BatchRunner(jobs=4))
    print(f"batch runner:         {time.perf_counter() - started:.1f}s")
    assert batched.to_dict() == serial.to_dict(), "backends must agree bit-for-bit"

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ResultStore(cache_dir)
        run_experiment(spec, store=store)  # cold: simulates and fills the cache
        started = time.perf_counter()
        cached = run_experiment(spec, store=store)  # warm: pure cache reads
        print(f"warm result store:    {time.perf_counter() - started:.2f}s "
              f"({store.hits} hits, {store.misses} misses)")
        assert cached.to_dict() == serial.to_dict()

    print()
    for config in spec.config_order:
        if config != spec.baseline:
            print(f"  {config:10s} speedup {serial.avg_speedup_pct(config):+6.1f}%  "
                  f"re-exec {serial.avg_reexec_rate(config):6.1%}")


if __name__ == "__main__":
    main()
