#!/usr/bin/env python
"""SVW as an *enabler*: the speculative store queue story (Figure 6).

SSQ replaces the slow associative SQ with a fast non-associative RSQ plus
a small FSQ, cutting load latency in half -- but it has no natural
re-execution filter: every load re-executes.  Without SVW the re-execution
traffic swamps the benefit; with SVW the design becomes viable.  This
example reproduces that crossover on a forwarding-heavy workload.
"""

from repro import Processor, generate_trace, spec_profile
from repro.harness.configs import fig6_configs
from repro.pipeline.stats import speedup


def main() -> None:
    trace = generate_trace(spec_profile("gcc"), 20_000)
    configs = fig6_configs()
    print(f"workload: {trace.name} ({len(trace)} instructions)")
    print()

    baseline = Processor(configs["baseline"], trace, warmup=5_000).run()
    print(f"baseline (4-cycle loads through the associative SQ): IPC {baseline.ipc:.3f}")
    print()

    for name in ("SSQ", "+SVW+UPD", "+PERFECT"):
        stats = Processor(configs[name], trace, warmup=5_000).run()
        print(
            f"{name:10s} IPC {stats.ipc:.3f} ({speedup(baseline, stats):+.1f}%)  "
            f"re-executed {stats.reexec_rate:6.1%} of loads, "
            f"filtered {stats.filtered_loads}, "
            f"FSQ loads {stats.fsq_loads}"
        )
    print()
    print(
        "Without SVW, SSQ re-executes 100% of loads and pays for it;\n"
        "with SVW it approaches the ideal-re-execution machine."
    )


if __name__ == "__main__":
    main()
