#!/usr/bin/env python
"""Composing load optimizations (section 3.5).

SSQ and RLE run simultaneously on the 8-wide machine.  Composing the
re-execution streams is trivial (a load re-executes if any optimization
marks it -- and SSQ marks them all); composing the SVW definitions uses
the MIN rule: a load under several optimizations is vulnerable to the
largest window.
"""

from repro import Processor, generate_trace, spec_profile
from repro.harness.configs import composition_configs
from repro.pipeline.stats import speedup


def main() -> None:
    trace = generate_trace(spec_profile("gcc"), 20_000)
    configs = composition_configs()
    print("composition: SSQ (speculative store queue) + RLE (load elimination)")
    print(f"workload: {trace.name}")
    print()

    baseline = Processor(configs["baseline"], trace, warmup=5_000).run()
    print(f"conventional baseline: IPC {baseline.ipc:.3f}")

    for name in ("combined", "+SVW"):
        stats = Processor(configs[name], trace, warmup=5_000).run()
        print(
            f"{name:9s} IPC {stats.ipc:.3f} ({speedup(baseline, stats):+.1f}%)  "
            f"marked {stats.marked_rate:6.1%}, re-executed {stats.reexec_rate:6.1%}, "
            f"eliminated {stats.elimination_rate:5.1%}"
        )
    print()
    print(
        "Both optimizations verify through one re-execution stream; one\n"
        "SVW filter covers them both (per-load windows compose with MIN)."
    )


if __name__ == "__main__":
    main()
