#!/usr/bin/env python
"""Quickstart: simulate a real kernel on three machines.

Runs the spill/fill kernel (call-frame save/restore traffic -- the classic
store-load forwarding pattern) on:

1. the conventional baseline,
2. the non-associative LQ (ordering checked by re-execution), and
3. NLQ + SVW (re-execution filtered by the store vulnerability window),

then prints re-execution statistics and verifies every machine against the
golden functional execution.
"""

from repro import Processor, eight_wide, kernel_trace
from repro.core import SVWConfig
from repro.isa.golden import golden_execute
from repro.pipeline.config import LSUKind, RexMode


def main() -> None:
    trace = kernel_trace("spill_fill")
    golden = golden_execute(trace)
    print(f"workload: {trace.name}, {len(trace)} dynamic instructions")
    print()

    configs = {
        "baseline (associative LQ)": eight_wide("baseline", store_issue=1),
        "NLQ (re-execution)": eight_wide(
            "nlq",
            lsu=LSUKind.NLQ,
            rex_mode=RexMode.REEXECUTE,
            rex_stages=2,
            store_issue=2,
        ),
        "NLQ + SVW": eight_wide(
            "nlq+svw",
            lsu=LSUKind.NLQ,
            rex_mode=RexMode.REEXECUTE,
            rex_stages=2,
            store_issue=2,
            svw=SVWConfig(),
        ),
    }

    for label, config in configs.items():
        processor = Processor(config, trace, validate=True)
        stats = processor.run()
        assert processor.committed_memory == golden.memory, "functional mismatch!"
        print(f"{label}:")
        print(f"  IPC {stats.ipc:.3f} over {stats.cycles} cycles")
        print(
            f"  loads: {stats.committed_loads}, marked {stats.marked_rate:.1%}, "
            f"re-executed {stats.reexec_rate:.1%}, filtered {stats.filtered_loads}"
        )
        print(f"  flushes: {stats.flushes} (rex failures {stats.rex_failures})")
        print("  committed state matches the golden functional execution")
        print()


if __name__ == "__main__":
    main()
