#!/usr/bin/env python
"""Redundant load elimination on a redundancy-heavy workload (Figure 7).

Register integration removes dynamically redundant loads from the
execution engine (load reuse) and satisfies reloads of just-stored values
straight from the store's data register (speculative memory bypassing).
Eliminated loads must re-execute before commit to catch false
eliminations; SVW filters those re-executions down to the loads whose
address actually saw a vulnerable store.
"""

from repro import Processor, generate_trace, spec_profile
from repro.harness.configs import fig7_configs
from repro.pipeline.stats import speedup


def main() -> None:
    trace = generate_trace(spec_profile("crafty"), 20_000)
    configs = fig7_configs()
    print(f"workload: {trace.name} (chess engine profile: hot global tables)")
    print()

    baseline = Processor(configs["baseline"], trace, warmup=5_000).run()
    print(f"4-wide baseline, no elimination: IPC {baseline.ipc:.3f}")
    print()

    for name in ("RLE", "+SVW", "+SVW-SQU", "+PERFECT"):
        stats = Processor(configs[name], trace, warmup=5_000).run()
        eliminated = stats.eliminated_reuse + stats.eliminated_bypass
        print(
            f"{name:9s} IPC {stats.ipc:.3f} ({speedup(baseline, stats):+.1f}%)  "
            f"eliminated {stats.elimination_rate:5.1%} "
            f"(reuse {stats.eliminated_reuse}, bypass {stats.eliminated_bypass}, "
            f"squash-reuse {stats.squash_reuse_loads}); "
            f"re-executed {stats.reexec_rate:5.1%}"
        )
    print()
    print(
        "SVW filters most eliminated-load re-executions; disabling squash\n"
        "reuse (-SQU) removes nearly all the rest but forfeits some reuse."
    )


if __name__ == "__main__":
    main()
