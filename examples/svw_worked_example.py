#!/usr/bin/env python
"""The paper's Figure 4 worked example, narrated step by step.

Follows one dynamic load through the four SVW events: dispatch (window
establishment), execution (store-load forwarding shrinks the window), the
conflicting store's retirement (SSBF update), and the re-execution filter
test.  Both endings are shown: Figure 4a (collision with a *younger* store
than the forwarding one -> re-execute) and Figure 4b (collision with an
*older* store -> skip).
"""

from repro.core import SVWConfig, SVWEngine

ADDR = {"A": 0x1000, "B": 0x2008, "C": 0x3010, "D": 0x4018}


def fresh_engine() -> SVWEngine:
    engine = SVWEngine(SVWConfig())
    for _ in range(62):  # history: stores 1..62 dispatched and retired
        engine.ssn.dispatch_store()
        engine.ssn.retire_store()
    return engine


def play(title: str, collisions: list[tuple[int, str]]) -> None:
    print(f"--- {title} ---")
    engine = fresh_engine()
    print(f"SSN_RETIRE = {engine.ssn.retire}")

    for number in (63, 64, 65, 66):
        ssn = engine.ssn.dispatch_store()
        print(f"dispatch store {ssn}")
    load_svw = engine.svw_at_dispatch()
    print(f"dispatch load: ld.SVW = SSN_RETIRE = {load_svw}")
    engine.ssn.dispatch_store()  # store 67, younger than the load
    print("dispatch store 67")

    # Store 63 (address C) retires; the load executes and reads its value
    # from store 65, which also references address A.
    engine.record_store(ADDR["C"], 8, 63)
    engine.ssn.retire_store()
    load_svw = engine.svw_after_forward(load_svw, 65)
    print(f"load forwards from store 65 -> ld.SVW = {load_svw}")

    for ssn, addr_name in collisions:
        engine.record_store(ADDR[addr_name], 8, ssn)
        engine.ssn.retire_store()
        print(f"store {ssn} retires to {addr_name}: SSBF[{addr_name}] = {ssn}")

    must = engine.must_reexecute(ADDR["A"], 8, load_svw)
    print(
        f"SVW stage: SSBF[A] = {engine.ssbf.lookup(ADDR['A'], 8)} "
        f"{'>' if must else '<='} ld.SVW = {load_svw} -> re-execute? "
        f"{'Yes' if must else 'No'}"
    )
    print()


def main() -> None:
    # Figure 4a: store 66 resolved to address A -- the load issued
    # over-aggressively and must re-execute to detect the violation.
    play("Figure 4a: vulnerable collision", [(64, "D"), (65, "A"), (66, "A")])
    # Figure 4b: the colliding store is 64, older than the forwarding
    # store 65 -- the load is not vulnerable and skips re-execution.
    play("Figure 4b: non-vulnerable collision", [(64, "A"), (65, "A"), (66, "D")])


if __name__ == "__main__":
    main()
